"""Tests for the edge-decision wave: (2 Delta - 1)-edge-coloring and
maximal matching (Corollaries 8.6 / 8.8)."""

import pytest

from repro.core.edgealgo import run_edge_coloring, run_maximal_matching
from repro.graphs import generators as gen
from repro.verify import assert_maximal_matching, assert_proper_edge_coloring


class TestEdgeColoring:
    def test_valid_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_edge_coloring(g, a=a)
        assert_proper_edge_coloring(g, res.edge_colors, max_colors=res.palette_bound)
        assert set(res.edge_colors) == set(g.edges())

    def test_palette_is_2delta_minus_one(self):
        g = gen.grid(6, 6)  # Delta = 4
        res = run_edge_coloring(g, a=2)
        assert res.palette_bound == 7
        assert all(0 <= c < 7 for c in res.edge_colors.values())

    def test_star_needs_delta_colors(self):
        g = gen.star(10)
        res = run_edge_coloring(g, a=1)
        assert res.colors_used == 9  # all edges share the hub

    def test_random_ids(self, forest_union_200):
        ids = gen.random_ids(forest_union_200.n, seed=5)
        res = run_edge_coloring(forest_union_200, a=3, ids=ids)
        assert_proper_edge_coloring(
            forest_union_200, res.edge_colors, max_colors=res.palette_bound
        )

    def test_worstcase_schedule_slower_same_quality(self):
        g = gen.union_of_forests(300, 3, seed=6)
        fast = run_edge_coloring(g, a=3)
        slow = run_edge_coloring(g, a=3, worstcase_schedule=True)
        assert_proper_edge_coloring(g, slow.edge_colors, max_colors=slow.palette_bound)
        assert slow.metrics.vertex_averaged > fast.metrics.vertex_averaged

    def test_deterministic(self):
        g = gen.union_of_forests(120, 2, seed=7)
        assert (
            run_edge_coloring(g, a=2).edge_colors
            == run_edge_coloring(g, a=2).edge_colors
        )


class TestMaximalMatching:
    def test_valid_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_maximal_matching(g, a=a)
        assert_maximal_matching(g, res.matching)

    def test_path_matching_size(self):
        g = gen.path(10)
        res = run_maximal_matching(g, a=1)
        # any maximal matching on P_10 has between 3 and 5 edges
        assert 3 <= len(res.matching) <= 5

    def test_star_matches_exactly_one(self):
        g = gen.star(12)
        res = run_maximal_matching(g, a=1)
        assert len(res.matching) == 1

    def test_complete_graph_perfect(self):
        g = gen.complete(8)
        res = run_maximal_matching(g, a=4)
        assert len(res.matching) == 4  # maximal on K_8 is perfect

    def test_random_ids(self, forest_union_200):
        ids = gen.random_ids(forest_union_200.n, seed=8)
        res = run_maximal_matching(forest_union_200, a=3, ids=ids)
        assert_maximal_matching(forest_union_200, res.matching)

    def test_worstcase_schedule_flag(self):
        g = gen.union_of_forests(300, 3, seed=9)
        fast = run_maximal_matching(g, a=3)
        slow = run_maximal_matching(g, a=3, worstcase_schedule=True)
        assert_maximal_matching(g, slow.matching)
        assert slow.metrics.vertex_averaged > fast.metrics.vertex_averaged

    def test_average_flat_across_scale(self):
        avgs = []
        for n in (200, 1600):
            g = gen.union_of_forests(n, 2, seed=10)
            res = run_maximal_matching(g, a=2)
            avgs.append(res.metrics.vertex_averaged)
        assert abs(avgs[1] - avgs[0]) < 4.0

"""Direct tests for the shared program plumbing (LocalView, bounds)."""

import pytest

from repro.core.common import (
    JOIN,
    LocalView,
    absorb_round,
    degree_bound,
    partition_length_bound,
)
from repro.graphs.graph import Graph
from repro.runtime.network import SyncNetwork


def test_localview_last_payload_wins():
    g = Graph(2, [(0, 1)])
    seen = {}

    def program(ctx):
        view = LocalView()
        ctx.send(1 - ctx.v, ("t", "first"))
        ctx.send(1 - ctx.v, ("t", "second"))
        yield
        view.absorb(ctx)
        seen[ctx.v] = view.value("t", 1 - ctx.v)
        return None

    SyncNetwork(g).run(program)
    assert seen == {0: "second", 1: "second"}


def test_localview_accumulates_across_rounds():
    g = Graph(2, [(0, 1)])
    out = {}

    def program(ctx):
        view = LocalView()
        ctx.send(1 - ctx.v, (JOIN, 1))
        yield
        view.absorb(ctx)
        ctx.send(1 - ctx.v, ("c", 9))
        yield
        view.absorb(ctx)
        out[ctx.v] = (view.get(JOIN), view.get("c"), view.heard("c", 1 - ctx.v))
        return None

    SyncNetwork(g).run(program)
    assert out[0] == ({1: 1}, {1: 9}, True)


def test_localview_value_default():
    view = LocalView()
    assert view.value("missing", 3) is None
    assert view.value("missing", 3, default=-1) == -1
    assert view.get("missing") == {}
    assert not view.heard("missing", 3)


def test_absorb_round_helper():
    g = Graph(2, [(0, 1)])
    got = {}

    def program(ctx):
        view = LocalView()
        ctx.broadcast(("x", ctx.v))
        yield from absorb_round(ctx, view)
        got[ctx.v] = view.value("x", 1 - ctx.v)
        return None

    SyncNetwork(g).run(program)
    assert got == {0: 1, 1: 0}


@pytest.mark.parametrize(
    "a,eps,expected",
    [(1, 1.0, 3), (2, 2.0, 8), (3, 0.25, 7), (5, 1.0, 15)],
)
def test_degree_bound_values(a, eps, expected):
    assert degree_bound(a, eps) == expected


def test_partition_length_bound_monotone_in_n_and_eps():
    assert partition_length_bound(100, 1.0) <= partition_length_bound(10**6, 1.0)
    # larger eps -> faster decay -> shorter bound
    assert partition_length_bound(10**6, 2.0) <= partition_length_bound(10**6, 0.25)

"""Tests for the polynomial cover-free set systems -- the combinatorial
heart of every Linial-style step."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coverfree import (
    PolyFamily,
    build_family,
    colors_after_one_step,
    fixpoint_palette,
    is_prime,
    next_prime,
    palette_schedule,
    steps_to_fixpoint,
    _int_root_ceil,
)


class TestPrimes:
    def test_is_prime_small(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23}
        for x in range(25):
            assert is_prime(x) == (x in primes)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(8) == 11
        assert next_prime(13) == 13
        assert next_prime(90) == 97

    def test_int_root_ceil(self):
        assert _int_root_ceil(1000, 3) == 10
        assert _int_root_ceil(1001, 3) == 11
        assert _int_root_ceil(1, 5) == 1
        assert _int_root_ceil(17, 2) == 5


class TestFamilyStructure:
    def test_members_have_size_q(self):
        fam = build_family(100, 3)
        for c in (0, 5, 99):
            pts = fam.member_points(c)
            assert len(pts) == fam.q
            assert len(set(pts)) == fam.q
            assert all(0 <= p < fam.ground_size for p in pts)

    def test_distinct_colors_distinct_sets(self):
        fam = build_family(64, 3)
        assert set(fam.member_points(3)) != set(fam.member_points(4))

    def test_evaluate_is_polynomial(self):
        fam = PolyFamily(capacity=9, A=1, slack=0, q=3, degree=1)
        # color 5 = digits (2, 1) base 3 => P(x) = 2 + 1*x
        assert [fam.evaluate(5, x) for x in range(3)] == [2, 0, 1]

    def test_intersection_bounded_by_degree(self):
        fam = build_family(200, 4)
        for c1 in range(0, 40, 7):
            for c2 in range(1, 40, 9):
                if c1 == c2:
                    continue
                inter = set(fam.member_points(c1)) & set(fam.member_points(c2))
                assert len(inter) <= fam.degree

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError, match="field too small"):
            PolyFamily(capacity=100, A=1, slack=0, q=3, degree=1)
        with pytest.raises(ValueError, match="cover-freeness"):
            PolyFamily(capacity=4, A=10, slack=0, q=2, degree=1)


class TestPick:
    def test_pick_avoids_neighbors(self):
        fam = build_family(500, 4)
        mine = 123
        nbrs = [7, 450, 88, 201]
        chosen = fam.pick(mine, nbrs)
        assert chosen in fam.member_points(mine)
        for u in nbrs:
            assert chosen not in fam.member_points(u)

    def test_pick_skips_equal_colors(self):
        fam = build_family(100, 2)
        # an equal-colored neighbor cannot be avoided and is skipped
        chosen = fam.pick(10, [10, 10])
        assert chosen in fam.member_points(10)

    def test_pick_deterministic(self):
        fam = build_family(300, 3)
        assert fam.pick(5, [9, 17, 33]) == fam.pick(5, [9, 17, 33])

    def test_pick_with_slack_allows_shared_points(self):
        fam = build_family(100, 8, slack=2)
        chosen = fam.pick(3, list(range(4, 12)))
        covered = sum(
            1 for u in range(4, 12) if chosen in fam.member_points(u)
        )
        assert covered <= 2

    def test_pick_over_bound_neighbors_raises(self):
        fam = build_family(50, 2)
        # more neighbors than the family was built for may exhaust it
        with pytest.raises(AssertionError):
            # force failure: every point of color 0's set covered
            fam.pick(0, list(range(1, 50)))


class TestSchedules:
    def test_one_step_palette_is_a2_logn_flavoured(self):
        # growing n with fixed A: one-step palette grows roughly like log n
        sizes = [colors_after_one_step(2**b, 4) for b in (10, 20, 40, 60)]
        assert sizes == sorted(sizes)
        assert sizes[-1] < 40 * sizes[0]  # far below linear growth

    def test_schedule_shrinks_monotonically(self):
        sched = palette_schedule(10**9, 5)
        sizes = [f.ground_size for f in sched]
        assert sizes == sorted(sizes, reverse=True)
        assert all(
            sched[i + 1].capacity == sched[i].ground_size
            for i in range(len(sched) - 1)
        )

    def test_fixpoint_is_quadratic_in_A(self):
        for A in (2, 4, 8, 16):
            fp = fixpoint_palette(A)
            assert fp <= (4 * A + 10) ** 2
            assert fp >= A * A  # cannot beat Linial's Omega(A^2)

    def test_steps_grow_like_log_star(self):
        assert steps_to_fixpoint(2**16, 3) <= steps_to_fixpoint(2**64, 3) <= 8

    def test_tiny_palette_gives_empty_schedule(self):
        assert palette_schedule(10, 8) == []


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=5000),
    A=st.integers(min_value=1, max_value=12),
)
def test_property_family_valid(capacity, A):
    fam = build_family(capacity, A)
    assert fam.q ** (fam.degree + 1) >= capacity
    assert fam.q > fam.A * fam.degree


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=50, max_value=2000),
    A=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_property_pick_always_avoids(capacity, A, data):
    """For any <= A distinctly-colored neighbors, the picked point avoids
    all their sets -- the cover-free guarantee."""
    fam = build_family(capacity, A)
    mine = data.draw(st.integers(min_value=0, max_value=capacity - 1))
    nbrs = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=capacity - 1),
            max_size=A,
        )
    )
    chosen = fam.pick(mine, nbrs)
    assert chosen in fam.member_points(mine)
    for u in nbrs:
        if u != mine:
            assert chosen not in fam.member_points(u)

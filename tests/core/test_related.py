"""Tests for the output-commit mechanism and the [12] reference results
(leader election / ring coloring)."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.related import run_leader_election
from repro.runtime.network import SyncNetwork


class TestCommit:
    def test_commit_records_round_and_value(self):
        g = Graph(1)

        def program(ctx):
            yield
            ctx.commit("answer")
            yield
            yield
            return None

        res = SyncNetwork(g).run(program)
        assert res.outputs[0] == "answer"
        assert res.output_rounds == (2,)
        assert res.metrics.rounds == (4,)
        assert res.output_metrics.vertex_averaged == 2.0

    def test_no_commit_defaults_to_termination(self):
        g = Graph(2, [(0, 1)])

        def program(ctx):
            yield
            return ctx.v

        res = SyncNetwork(g).run(program)
        assert res.output_rounds == res.metrics.rounds

    def test_double_commit_rejected(self):
        g = Graph(1)

        def program(ctx):
            ctx.commit(1)
            ctx.commit(2)
            return None
            yield  # pragma: no cover

        with pytest.raises(RuntimeError, match="twice"):
            SyncNetwork(g).run(program)

    def test_conflicting_return_rejected(self):
        g = Graph(1)

        def program(ctx):
            ctx.commit(1)
            return 2
            yield  # pragma: no cover

        with pytest.raises(RuntimeError, match="after committing"):
            SyncNetwork(g).run(program)

    def test_matching_return_allowed(self):
        g = Graph(1)

        def program(ctx):
            ctx.commit("x")
            return "x"
            yield  # pragma: no cover

        assert SyncNetwork(g).run(program).outputs[0] == "x"


class TestLeaderElection:
    @pytest.mark.parametrize("n", [3, 7, 32, 128])
    def test_elects_max_id(self, n):
        g = gen.ring(n)
        ids = gen.random_ids(n, seed=n)
        res = run_leader_election(g, ids=ids)
        assert ids[res.leader] == max(ids)
        assert res.outputs[res.leader] == "leader"
        assert sum(1 for o in res.outputs.values() if o == "leader") == 1

    def test_needs_ring(self):
        with pytest.raises(ValueError):
            run_leader_election(Graph(2, [(0, 1)]))

    def test_bad_successor(self):
        g = gen.ring(5)
        with pytest.raises(ValueError, match="not a neighbor"):
            run_leader_election(g, successor=[2, 3, 4, 0, 1])

    def test_feuilloley_gap(self):
        """The [12] exponential gap: output-averaged O(log n) while
        termination is Theta(n) for everyone."""
        out_avgs, term_avgs = [], []
        for n in (64, 512):
            g = gen.ring(n)
            res = run_leader_election(g, ids=gen.random_ids(n, seed=1))
            out_avgs.append(res.output_metrics.vertex_averaged)
            term_avgs.append(res.metrics.vertex_averaged)
        # termination scales ~linearly (8x size -> ~8x rounds)
        assert term_avgs[1] / term_avgs[0] > 4
        # output average grows far slower than linearly
        assert out_avgs[1] / out_avgs[0] < 3
        assert out_avgs[1] < term_avgs[1] / 20

    def test_sequential_ids_worst_layout(self):
        # adversarially ordered IDs around the ring still work
        n = 50
        g = gen.ring(n)
        res = run_leader_election(g, ids=list(range(n)))
        assert res.leader == n - 1

    def test_ring_coloring_has_no_gap_by_contrast(self):
        """[12]'s negative result: for O(1)-coloring of rings the averaged
        and worst-case complexities coincide -- unlike leader election."""
        from repro.baselines import run_ring_three_coloring

        g = gen.ring(512)
        col = run_ring_three_coloring(g, ids=gen.random_ids(512, seed=2))
        m = col.metrics
        assert m.worst_case - m.vertex_averaged < 1.0

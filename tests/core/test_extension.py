"""Tests for the extension framework's vertex problems (Corollaries
8.3 / 8.4)."""

import pytest

from repro.core.extension import run_delta_plus_one_coloring, run_mis
from repro.graphs import generators as gen
from repro.verify import assert_maximal_independent_set, assert_proper_coloring


class TestDeltaPlusOne:
    def test_proper_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_delta_plus_one_coloring(g, a=a)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    def test_palette_is_exactly_delta_plus_one(self):
        g = gen.star_forest(5, 9)  # Delta = 9, arboricity 1
        res = run_delta_plus_one_coloring(g, a=1)
        assert res.palette_bound == 10
        assert res.colors_used <= 10
        assert all(0 <= c <= 9 for c in res.colors.values())

    def test_star_uses_two_colors(self):
        """Greedy along the priority order is color-frugal: a star needs
        2 colors even though Delta + 1 is large."""
        g = gen.star(30)
        res = run_delta_plus_one_coloring(g, a=1)
        assert res.colors_used == 2

    def test_high_degree_low_arboricity_average_small(self):
        """The row's point: the running time depends on a, not Delta."""
        g = gen.caterpillar(200, 40)  # Delta = 42, a = 1
        res = run_delta_plus_one_coloring(g, a=1)
        assert res.metrics.vertex_averaged < 12

    def test_random_ids(self, forest_union_200):
        ids = gen.random_ids(forest_union_200.n, seed=3)
        res = run_delta_plus_one_coloring(forest_union_200, a=3, ids=ids)
        assert_proper_coloring(forest_union_200, res.colors, max_colors=res.palette_bound)

    def test_deterministic(self, forest_union_200):
        r1 = run_delta_plus_one_coloring(forest_union_200, a=3)
        r2 = run_delta_plus_one_coloring(forest_union_200, a=3)
        assert r1.colors == r2.colors


class TestMIS:
    def test_valid_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_mis(g, a=a)
        assert_maximal_independent_set(g, res.mis)

    def test_every_vertex_decides(self, forest_union_200):
        res = run_mis(forest_union_200, a=3)
        assert set(res.in_mis) == set(forest_union_200.vertices())

    def test_isolated_vertices_join(self):
        from repro.graphs.graph import Graph

        g = Graph(4, [(0, 1)])
        res = run_mis(g, a=1)
        assert res.in_mis[2] and res.in_mis[3]

    def test_random_ids(self, forest_union_200):
        ids = gen.random_ids(forest_union_200.n, seed=9)
        res = run_mis(forest_union_200, a=3, ids=ids)
        assert_maximal_independent_set(forest_union_200, res.mis)

    def test_average_flat_across_scale(self):
        """Corollary 8.4 shape: vertex-averaged rounds do not grow log n-like."""
        avgs = []
        for n in (250, 2000):
            g = gen.union_of_forests(n, 2, seed=4)
            res = run_mis(g, a=2)
            avgs.append(res.metrics.vertex_averaged)
        assert abs(avgs[1] - avgs[0]) < 2.5

    def test_mis_differs_across_id_assignments(self):
        """The solution (not its validity) depends on the ID assignment --
        the measure maximizes over assignments for a reason."""
        g = gen.ring(30)
        m1 = run_mis(g, a=2, ids=gen.random_ids(30, seed=1)).mis
        m2 = run_mis(g, a=2, ids=gen.random_ids(30, seed=2)).mis
        assert m1 != m2


class TestWorstcaseScheduleFlag:
    def test_mis_worstcase_schedule(self, forest_union_200):
        from repro.core.common import partition_length_bound

        fast = run_mis(forest_union_200, a=3)
        slow = run_mis(forest_union_200, a=3, worstcase_schedule=True)
        assert_maximal_independent_set(forest_union_200, slow.mis)
        ell = partition_length_bound(forest_union_200.n, 1.0)
        assert slow.metrics.vertex_averaged >= ell
        assert slow.metrics.vertex_averaged > fast.metrics.vertex_averaged + 3

    def test_delta_plus_one_worstcase_schedule(self, forest_union_200):
        fast = run_delta_plus_one_coloring(forest_union_200, a=3)
        slow = run_delta_plus_one_coloring(
            forest_union_200, a=3, worstcase_schedule=True
        )
        assert_proper_coloring(
            forest_union_200, slow.colors, max_colors=slow.palette_bound
        )
        assert slow.metrics.vertex_averaged > fast.metrics.vertex_averaged + 3

"""Direct tests for the self-synchronizing Arb-Linial subroutines."""

from repro.core.arb_linial import (
    arb_linial_steps,
    greedy_from_list,
    list_coloring_steps,
    priority_wave,
)
from repro.core.common import LocalView
from repro.core.coverfree import palette_schedule
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.runtime.network import SyncNetwork
from repro.verify import assert_list_coloring, assert_proper_coloring

import pytest


def test_greedy_from_list():
    assert greedy_from_list([3, 1, 4], set()) == 3
    assert greedy_from_list([3, 1, 4], {3, 1}) == 4
    with pytest.raises(AssertionError):
        greedy_from_list([1], {1})


def test_arb_linial_steps_proper_against_all_neighbors():
    g = gen.union_of_forests(300, 2, seed=1)
    delta = g.max_degree()

    def program(ctx):
        view = LocalView()
        c = yield from arb_linial_steps(
            ctx, view, ctx.neighbors, ctx.config["schedule"], tag="t"
        )
        return c

    net = SyncNetwork(g)
    net.config["schedule"] = palette_schedule(net.config["id_space"], delta)
    res = net.run(program)
    assert_proper_coloring(g, res.outputs)


def test_arb_linial_steps_staggered_starts_stay_proper():
    """Self-synchronization: vertices entering at different rounds still
    produce a proper coloring (each waits for the step colors it needs)."""
    g = gen.gnp(80, 0.06, seed=2)
    delta = max(g.max_degree(), 1)

    def program(ctx):
        view = LocalView()
        for _ in range(ctx.v % 7):  # staggered entry
            yield
            view.absorb(ctx)
        c = yield from arb_linial_steps(
            ctx, view, ctx.neighbors, ctx.config["schedule"], tag="t"
        )
        return c

    net = SyncNetwork(g)
    net.config["schedule"] = palette_schedule(net.config["id_space"], delta)
    res = net.run(program)
    assert_proper_coloring(g, res.outputs)


def test_priority_wave_respects_order():
    """A wave along a path oriented by index terminates in index order and
    each vertex sees exactly its predecessor's value."""
    g = gen.path(8)

    def program(ctx):
        view = LocalView()
        preds = [u for u in ctx.neighbors if u < ctx.v]
        value = yield from priority_wave(
            ctx, view, preds, "w", lambda pv: max(pv.values(), default=-1) + 1
        )
        return value

    res = SyncNetwork(g).run(program)
    assert res.outputs == {v: v for v in range(8)}
    # termination rounds increase along the wave
    rounds = res.metrics.rounds
    assert all(rounds[v] <= rounds[v + 1] for v in range(7))


def test_priority_wave_no_predecessors_immediate():
    g = Graph(3)

    def program(ctx):
        view = LocalView()
        v = yield from priority_wave(ctx, view, [], "w", lambda pv: 42)
        return v

    res = SyncNetwork(g).run(program)
    assert all(v == 42 for v in res.outputs.values())
    assert res.metrics.worst_case == 1


def test_list_coloring_respects_lists():
    g = gen.gnp(60, 0.08, seed=3)
    delta = max(g.max_degree(), 1)
    lists = {v: list(range(100 + v % 3, 100 + v % 3 + g.degree(v) + 1)) for v in g.vertices()}

    def program(ctx):
        view = LocalView()
        c = yield from list_coloring_steps(
            ctx,
            view,
            members=ctx.neighbors,
            palette=ctx.config["lists"][ctx.v],
            schedule=ctx.config["schedule"],
            tag="lc",
        )
        return c

    net = SyncNetwork(g)
    net.config["schedule"] = palette_schedule(net.config["id_space"], delta)
    net.config["lists"] = lists
    res = net.run(program)
    assert_list_coloring(g, res.outputs, {v: set(lists[v]) for v in g.vertices()})


def test_list_coloring_with_external_predecessors():
    """External predecessors' announced picks are honoured (the earlier-
    H-set pruning of Corollary 8.3)."""
    g = gen.path(2)

    def program(ctx):
        view = LocalView()
        if ctx.v == 0:
            ctx.broadcast(("ext", 5))
            yield
            return 5
        c = yield from list_coloring_steps(
            ctx,
            view,
            members=[],
            palette=[5, 6],
            schedule=[],
            tag="lc",
            external_predecessors=[0],
            external_tag="ext",
        )
        return c

    res = SyncNetwork(g).run(program)
    assert res.outputs[1] == 6  # 5 was claimed externally

"""Tests for the segmentation scheme (Sections 7.5-7.7)."""

import pytest

from repro.analysis.logstar import rho
from repro.core.common import partition_length_bound
from repro.core.segmentation import (
    make_segment_plan,
    run_ka2_coloring,
    run_ka_coloring,
    segmentation_trace,
)
from repro.graphs import generators as gen
from repro.verify import assert_proper_coloring


class TestSegmentPlan:
    def test_boundaries_cover_everything(self):
        plan = make_segment_plan(10**6, 4, eps=1.0)
        assert plan.k == 4
        # every H-index maps to a segment in k..1
        segs = {plan.segment_of(h) for h in range(1, 200)}
        assert segs <= set(range(1, 5))
        assert plan.segment_of(1) == 4  # segment k forms first
        assert plan.segment_of(10**6) == 1  # segment 1 is open-ended

    def test_segment_sizes_grow_towards_segment_one(self):
        plan = make_segment_plan(10**6, 3, eps=1.0)
        ell = partition_length_bound(10**6, 1.0)
        sizes = [
            plan.upper_bound(s, ell) - plan.lower_bound(s) + 1
            for s in range(plan.k, 0, -1)
        ]
        assert sizes == sorted(sizes)  # log^(k) n <= ... <= log^(1) n

    def test_bounds_consistent(self):
        plan = make_segment_plan(5000, 3, eps=0.5)
        ell = partition_length_bound(5000, 0.5)
        for s in range(plan.k, 0, -1):
            lo, hi = plan.lower_bound(s), plan.upper_bound(s, ell)
            assert lo <= hi
            assert plan.segment_of(lo) == s
            assert plan.segment_of(hi) == s

    def test_k1_single_segment(self):
        plan = make_segment_plan(1000, 1, eps=1.0)
        assert plan.segment_of(1) == 1 and plan.segment_of(999) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            make_segment_plan(100, 0, eps=1.0)


class TestKA2:
    def test_proper_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_ka2_coloring(g, a=a, k=2)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    @pytest.mark.parametrize("k", [1, 2, 3, None])
    def test_k_values(self, forest_union_200, k):
        res = run_ka2_coloring(forest_union_200, a=3, k=k)
        assert_proper_coloring(
            forest_union_200, res.colors, max_colors=res.palette_bound
        )

    def test_palette_scales_with_k(self):
        g = gen.union_of_forests(150, 2, seed=1)
        b2 = run_ka2_coloring(g, a=2, k=2).palette_bound
        b3 = run_ka2_coloring(g, a=2, k=3).palette_bound
        assert b3 == b2 // 2 * 3  # k * fixpoint

    def test_default_k_is_rho(self):
        g = gen.union_of_forests(150, 2, seed=2)
        assert (
            run_ka2_coloring(g, a=2).palette_bound
            == run_ka2_coloring(g, a=2, k=rho(g.n)).palette_bound
        )


class TestKA:
    def test_proper_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_ka_coloring(g, a=a, k=2)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    def test_palette_linear_in_a(self):
        for a in (1, 3):
            g = gen.union_of_forests(120, a, seed=3)
            res = run_ka_coloring(g, a=a, k=2)
            assert res.palette_bound == 2 * (int(3 * a) + 1)

    def test_ka_beats_ka2_on_colors(self):
        g = gen.union_of_forests(200, 3, seed=4)
        ka = run_ka_coloring(g, a=3, k=2)
        ka2 = run_ka2_coloring(g, a=3, k=2)
        assert ka.palette_bound < ka2.palette_bound


class TestTrace:
    def test_trace_rows_cover_all_vertices(self):
        g = gen.union_of_forests(400, 3, seed=5)
        k = rho(g.n)
        res = run_ka2_coloring(g, a=3, k=k)
        plan = make_segment_plan(g.n, k, 1.0)
        rows = segmentation_trace(res, plan, partition_length_bound(g.n, 1.0))
        assert len(rows) == k
        assert sum(r.vertices for r in rows) == g.n
        assert abs(sum(r.fraction for r in rows) - 1.0) < 1e-9
        # segments are reported k first (formation order)
        assert [r.segment for r in rows] == list(range(k, 0, -1))

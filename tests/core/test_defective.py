"""Tests for defective colorings, the asynchronous H-partition, and the
arbdefective decision rule (Section 7.8.1 machinery)."""

import pytest

from repro.core.common import LocalView, degree_bound
from repro.core.defective import (
    arbdefective_choose,
    arbdefective_class_bound,
    async_h_partition,
    defective_schedule,
    run_defective_coloring,
)
from repro.core.partition import run_partition
from repro.graphs import generators as gen
from repro.runtime.network import SyncNetwork
from repro.verify import assert_defective_coloring, assert_h_partition


class TestDefectiveColoring:
    def test_defect_bound_holds(self):
        g = gen.union_of_forests(800, 4, seed=1)
        for d in (0, 1, 3):
            res = run_defective_coloring(g, d=d)
            assert_defective_coloring(
                g, res.colors, max_defect=d, max_colors=res.palette_bound
            )

    def test_palette_shrinks_with_defect_budget(self):
        g = gen.union_of_forests(1500, 4, seed=2)
        bounds = [run_defective_coloring(g, d=d).palette_bound for d in (0, 2, 8)]
        assert bounds[0] >= bounds[1] >= bounds[2]
        assert bounds[2] < bounds[0]

    def test_custom_degree_limit(self):
        g = gen.grid(10, 10)
        res = run_defective_coloring(g, d=1, degree_limit=4)
        assert_defective_coloring(g, res.colors, max_defect=1)

    def test_schedule_slack_totals_at_most_d(self):
        for d in (1, 3, 7, 16):
            sched = defective_schedule(10**6, 6, d)
            assert sum(f.slack for f in sched) <= d

    def test_zero_defect_equals_proper_schedule(self):
        sched = defective_schedule(10**6, 5, 0)
        assert all(f.slack == 0 for f in sched)


class TestAsyncHPartition:
    def _run(self, g, A, stagger=None):
        def program(ctx):
            view = LocalView()
            if stagger:
                for _ in range(stagger(ctx.v)):
                    yield
                    view.absorb(ctx)
            h = yield from async_h_partition(ctx, view, ctx.neighbors, A, tag="t")
            return h

        return SyncNetwork(g).run(program, max_rounds=20 * g.n + 100)

    def test_matches_synchronous_partition(self):
        """The async fixpoint equals the synchronous peeling exactly."""
        g = gen.union_of_forests(200, 3, seed=3)
        A = degree_bound(3, 1.0)
        sync = run_partition(g, a=3)
        res = self._run(g, A)
        assert dict(res.outputs) == sync.h_index

    def test_h_partition_property(self):
        g = gen.gnp(120, 0.06, seed=4)
        A = 7
        res = self._run(g, A)
        assert_h_partition(g, dict(res.outputs), A)

    def test_robust_to_staggered_starts(self):
        """Vertices entering the protocol at different rounds (as inside the
        Section 7.8 recursions) still compute the same decomposition."""
        g = gen.union_of_forests(150, 3, seed=5)
        A = degree_bound(3, 1.0)
        aligned = self._run(g, A)
        staggered = self._run(g, A, stagger=lambda v: v % 5)
        assert aligned.outputs == staggered.outputs

    def test_isolated_vertex(self):
        g = gen.star_forest(2, 1)  # tiny stars
        res = self._run(g, A=3)
        assert all(h == 1 for h in res.outputs.values())


class TestArbdefectiveRule:
    def test_choose_min_usage(self):
        assert arbdefective_choose(3, [0, 0, 1]) == 2
        assert arbdefective_choose(2, [0, 1, 0, 1]) == 0  # tie -> smallest
        assert arbdefective_choose(4, []) == 0

    def test_class_bound(self):
        assert arbdefective_class_bound(9, 3) == 3
        assert arbdefective_class_bound(10, 3) == 4
        assert arbdefective_class_bound(10, 3, defect=2) == 6

    def test_choose_respects_bound(self):
        """With <= A parents and k colors, the chosen color is used by at
        most ceil(A/k) parents -- the arbdefective guarantee."""
        import random

        rng = random.Random(0)
        for _ in range(200):
            A, k = rng.randint(1, 12), rng.randint(1, 6)
            parents = [rng.randrange(k) for _ in range(rng.randint(0, A))]
            c = arbdefective_choose(k, parents)
            assert parents.count(c) <= arbdefective_class_bound(A, k)


class TestStandaloneArbdefective:
    def test_class_arboricity_bound_exact(self):
        """The headline guarantee, checked with the exact arboricity
        oracle: every color class induces arboricity <= ceil(A/k)."""
        from repro.core.defective import run_arbdefective_coloring
        from repro.verify import assert_arbdefective_coloring

        g = gen.union_of_forests(150, 4, seed=21)
        for k in (2, 3, 6):
            res = run_arbdefective_coloring(g, a=4, k=k)
            assert set(res.colors) == set(g.vertices())
            assert all(0 <= c < k for c in res.colors.values())
            assert_arbdefective_coloring(
                g, res.colors, max_arboricity=res.arboricity_bound, max_colors=k
            )

    def test_k_one_is_trivial(self):
        from repro.core.defective import run_arbdefective_coloring

        g = gen.grid(6, 6)
        res = run_arbdefective_coloring(g, a=2, k=1)
        assert set(res.colors.values()) == {0}
        assert res.arboricity_bound >= 2  # the whole graph in one class

    def test_larger_k_smaller_class_arboricity(self):
        from repro.core.defective import run_arbdefective_coloring

        g = gen.union_of_forests(120, 5, seed=22)
        b2 = run_arbdefective_coloring(g, a=5, k=2).arboricity_bound
        b8 = run_arbdefective_coloring(g, a=5, k=8).arboricity_bound
        assert b8 < b2

    def test_invalid_k(self):
        from repro.core.defective import run_arbdefective_coloring

        with pytest.raises(ValueError):
            run_arbdefective_coloring(gen.ring(5), a=2, k=0)

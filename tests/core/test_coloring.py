"""Tests for the Section 7.2-7.4 colorings."""

import pytest

from repro.core.coloring import (
    run_a2_coloring,
    run_a2logn_coloring,
    run_oa_coloring,
    two_phase_split,
)
from repro.graphs import generators as gen
from repro.verify import assert_proper_coloring


ALGOS = [
    ("a2logn", run_a2logn_coloring),
    ("a2", run_a2_coloring),
    ("oa", run_oa_coloring),
]


@pytest.mark.parametrize("algo_name,algo", ALGOS, ids=[a for a, _ in ALGOS])
def test_proper_on_suite(named_graph, algo_name, algo):
    name, g, a = named_graph
    if g.n == 0:
        return
    res = algo(g, a=a)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)
    assert set(res.colors) == set(g.vertices())


@pytest.mark.parametrize("algo_name,algo", ALGOS, ids=[a for a, _ in ALGOS])
def test_random_ids(forest_union_200, algo_name, algo):
    ids = gen.random_ids(forest_union_200.n, seed=77)
    res = algo(forest_union_200, a=3, ids=ids)
    assert_proper_coloring(forest_union_200, res.colors, max_colors=res.palette_bound)


@pytest.mark.parametrize("algo_name,algo", ALGOS, ids=[a for a, _ in ALGOS])
def test_large_id_space(algo_name, algo):
    g = gen.union_of_forests(120, 2, seed=3)
    ids = gen.random_ids(g.n, seed=5, id_space=10**7)
    res = algo(g, a=2, ids=ids)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)


class TestPaletteQuality:
    def test_a2logn_palette_bound_shape(self):
        """Theorem 7.2: O(a^2 log n) colors."""
        g1 = gen.union_of_forests(200, 2, seed=1)
        res = run_a2logn_coloring(g1, a=2)
        # one cover-free step from an n-sized ID space
        assert res.palette_bound <= 40 * 4 * max(g1.n.bit_length(), 1)

    def test_a2_palette_independent_of_n(self):
        """The 7.3 palette is 2 x the Linial fixpoint -- no log n factor:
        it stays put while the 7.2 palette grows with the ID space."""
        bounds_a2, bounds_a2logn = [], []
        for n in (300, 600):
            g = gen.union_of_forests(n, 2, seed=2)
            ids = gen.random_ids(n, seed=1, id_space=n * n)
            bounds_a2.append(run_a2_coloring(g, a=2, ids=ids).palette_bound)
            bounds_a2logn.append(run_a2logn_coloring(g, a=2, ids=ids).palette_bound)
        assert bounds_a2[0] == bounds_a2[1]
        assert bounds_a2logn[1] >= bounds_a2logn[0]

    def test_oa_palette_linear_in_a(self):
        """Theorem 7.9: O(a) colors -- 2 * (A + 1) with A = (2+eps)a."""
        for a in (1, 2, 4):
            g = gen.union_of_forests(150, a, seed=3)
            res = run_oa_coloring(g, a=a)
            assert res.palette_bound == 2 * (int((2 + 1.0) * a) + 1)
            assert res.colors_used <= res.palette_bound

    def test_two_phase_split_grows_like_loglog(self):
        assert two_phase_split(2**8, 1.0) < two_phase_split(2**64, 1.0) <= 12


class TestAveragedComplexity:
    def test_a2logn_average_constant(self):
        """Theorem 7.2: O(1) vertex-averaged rounds, flat across scale."""
        avgs = []
        for n in (200, 1600):
            g = gen.union_of_forests(n, 3, seed=4)
            res = run_a2logn_coloring(g, a=3, eps=0.5)
            avgs.append(res.metrics.vertex_averaged)
        assert max(avgs) <= 1 + (2 + 0.5) / 0.5
        assert abs(avgs[1] - avgs[0]) < 1.0

    def test_a2_average_stays_far_below_worst_possible(self):
        g = gen.union_of_forests(2000, 3, seed=5)
        res = run_a2_coloring(g, a=3)
        # the worst-case lower bound for this problem is Omega(log n)-ish;
        # the measured average must sit well under the partition bound.
        assert res.metrics.vertex_averaged < 8

    def test_average_never_exceeds_worst(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_oa_coloring(g, a=a)
        assert res.metrics.vertex_averaged <= res.metrics.worst_case


class TestDeterminism:
    @pytest.mark.parametrize("algo_name,algo", ALGOS, ids=[a for a, _ in ALGOS])
    def test_repeatable(self, algo_name, algo):
        g = gen.union_of_forests(100, 2, seed=6)
        r1 = algo(g, a=2, seed=1)
        r2 = algo(g, a=2, seed=1)
        assert r1.colors == r2.colors
        assert r1.metrics.rounds == r2.metrics.rounds

"""Crash-tolerant flood-min binary consensus (:mod:`repro.core.consensus`).

Fault-free runs must decide the minimum input per connected component
(validity + agreement); under crash-stop plans the survivors of each
surviving component must still agree on some original component input.
The vertex-averaged story: on an all-or-mostly-zero instance almost
every vertex decides in O(1) rounds while the worst case stays Theta(n).
"""

import pytest

from repro.core.consensus import ConsensusResult, decision_horizon, run_consensus
from repro.faults import CrashSpec, FaultPlan, session
from repro.graphs import generators as gen
from repro.runtime import DelaySpec, mode_session
from repro.zoo.checks import check_consensus


class TestFaultFree:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_decides_component_minimum(self, seed):
        g = gen.gnp(60, 0.06, seed=seed)
        res = run_consensus(g, seed=seed)
        for comp in g.connected_components():
            want = min(res.values[v] for v in comp)
            assert all(res.decisions[v] == want for v in comp)

    def test_all_ones_decides_one(self):
        g = gen.ring(20)
        res = run_consensus(g, values=[1] * 20)
        assert set(res.decisions.values()) == {1}
        # the 1-deciders must wait out the full horizon
        assert res.metrics.worst_case >= decision_horizon(20)

    def test_explicit_values_respected(self):
        g = gen.ring(10)
        values = [1] * 10
        values[3] = 0
        res = run_consensus(g, values=values)
        assert res.values == tuple(values)
        assert set(res.decisions.values()) == {0}

    def test_nonbinary_values_rejected(self):
        g = gen.ring(4)
        with pytest.raises(ValueError, match="binary"):
            run_consensus(g, values=[0, 1, 2, 0])

    def test_zero_instances_decide_in_constant_averaged_rounds(self):
        # one zero in a long path: the averaged ROUND count is small for
        # the zero side... but the paper-relevant measure is the averaged
        # OUTPUT time; with all-zero inputs everyone commits in round 1.
        n = 200
        g = gen.ring(n)
        res = run_consensus(g, values=[0] * n)
        assert res.output_metrics.vertex_averaged == 1.0
        assert set(res.decisions.values()) == {0}

    def test_result_surface(self):
        g = gen.ring(8)
        res = run_consensus(g, seed=1)
        assert isinstance(res, ConsensusResult)
        assert set(res.decisions) == set(g.vertices())
        assert res.times is None  # sync run


class TestCrashTolerance:
    @pytest.mark.parametrize("seed", range(8))
    def test_survivors_agree_and_stay_valid_under_hazard(self, seed):
        g = gen.gnp(50, 0.07, seed=seed)
        plan = FaultPlan(seed=seed, crashes=CrashSpec(hazard=0.02))
        with session(plan) as adversary:
            res = run_consensus(g, seed=seed)
        alive = set(g.vertices()) - set(adversary.crashed)
        check_consensus(g, res, alive)

    def test_targeted_crash_of_the_zero_carrier(self):
        # vertex 0 holds the only zero and crashes before round 2: it
        # still broadcast in round 1 (crash-stop is round-atomic), or not
        # at all -- either way survivors must agree on a valid value.
        n = 12
        g = gen.ring(n)
        values = [1] * n
        values[0] = 0
        plan = FaultPlan(seed=0, crashes=CrashSpec(at={2: 1}))
        with session(plan) as adversary:
            res = run_consensus(g, values=values)
        alive = set(g.vertices()) - set(adversary.crashed)
        check_consensus(g, res, alive)


class TestAsyncMode:
    @pytest.mark.parametrize("dist", ["fixed", "uniform", "exp"])
    def test_async_decisions_match_sync(self, dist):
        g = gen.gnp(40, 0.08, seed=2)
        sync = run_consensus(g, seed=2)
        with mode_session("async", delays=DelaySpec(dist=dist, seed=4)):
            async_ = run_consensus(g, seed=2)
        assert async_.decisions == sync.decisions
        assert async_.metrics.rounds == sync.metrics.rounds
        assert async_.times is not None

    def test_averaged_output_time_constant_on_zero_heavy_instance(self):
        # every vertex holds 0: all commit in local round 1 at t = 0, so
        # the averaged output time is 1.0 regardless of the horizon.
        n = 60
        g = gen.ring(n)
        with mode_session("async", delays=DelaySpec(dist="exp", scale=2.0)):
            res = run_consensus(g, values=[0] * n)
        assert res.times.averaged_output_time == 1.0


class TestHorizon:
    def test_horizon_is_linear(self):
        assert decision_horizon(10) == 24
        assert decision_horizon(1) == 6

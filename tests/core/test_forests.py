"""Tests for forest decompositions (Sections 6.1 / 7.1)."""

from repro.core.forests import (
    run_parallelized_forest_decomposition,
    run_worstcase_forest_decomposition,
)
from repro.core.common import partition_length_bound
from repro.graphs import generators as gen
from repro.verify import (
    assert_acyclic_orientation,
    assert_forest_decomposition,
    assert_h_partition,
)


class TestParallelized:
    def test_valid_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        fd = run_parallelized_forest_decomposition(g, a=a)
        assert_h_partition(g, fd.h_index, fd.A)
        o = fd.orientation()
        assert_acyclic_orientation(o, max_out_degree=fd.A)
        assert_forest_decomposition(
            g, fd.edge_labels(), max_forests=fd.A, orientation=o
        )

    def test_labels_distinct_per_vertex(self, forest_union_200):
        fd = run_parallelized_forest_decomposition(forest_union_200, a=3)
        for v, info in fd.info.items():
            labs = list(info.labels.values())
            assert sorted(labs) == list(range(1, len(labs) + 1))

    def test_num_forests_at_most_A(self, forest_union_200):
        fd = run_parallelized_forest_decomposition(forest_union_200, a=3)
        assert 1 <= fd.num_forests <= fd.A

    def test_theorem_71_average_constant(self):
        """Theorem 7.1: O(1) vertex-averaged complexity (== Partition + 1)."""
        avgs = []
        for n in (200, 800, 3200):
            g = gen.union_of_forests(n, 3, seed=8)
            fd = run_parallelized_forest_decomposition(g, a=3, eps=0.5)
            avgs.append(fd.metrics.vertex_averaged)
        assert max(avgs) <= 1 + (2 + 0.5) / 0.5
        assert max(avgs) - min(avgs) < 1.0

    def test_parents_are_consistent_with_h_order(self, forest_union_200):
        fd = run_parallelized_forest_decomposition(forest_union_200, a=3)
        for v, info in fd.info.items():
            for p in info.parents:
                hp, hv = fd.h_index[p], fd.h_index[v]
                assert hp > hv or (hp == hv)


class TestWorstcaseSchedule:
    def test_same_decomposition_different_schedule(self):
        g = gen.union_of_forests(150, 3, seed=9)
        fast = run_parallelized_forest_decomposition(g, a=3)
        slow = run_worstcase_forest_decomposition(g, a=3)
        # identical combinatorial output ...
        assert fast.h_index == slow.h_index
        assert fast.edge_labels() == slow.edge_labels()
        # ... but the worst-case schedule pays Theta(log n) for everyone
        ell = partition_length_bound(g.n, 1.0)
        assert slow.metrics.worst_case == ell + 1
        assert slow.metrics.vertex_averaged == ell + 1
        assert fast.metrics.vertex_averaged < slow.metrics.vertex_averaged / 3

    def test_worstcase_average_grows_with_n(self):
        avgs = []
        for n in (200, 3200):
            g = gen.union_of_forests(n, 3, seed=10)
            fd = run_worstcase_forest_decomposition(g, a=3)
            avgs.append(fd.metrics.vertex_averaged)
        assert avgs[1] > avgs[0]  # Theta(log n) schedule

    def test_worstcase_valid(self, forest_union_200):
        fd = run_worstcase_forest_decomposition(forest_union_200, a=3)
        assert_forest_decomposition(
            forest_union_200,
            fd.edge_labels(),
            max_forests=fd.A,
            orientation=fd.orientation(),
        )

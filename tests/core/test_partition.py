"""Tests for Procedure Partition (Section 6.1): correctness of the
H-partition, Lemma 6.1's decay, Theorem 6.3's O(1) average, and the
composition of Corollary 6.4."""

import pytest

from repro.core.common import degree_bound, partition_length_bound
from repro.core.partition import (
    blocking_schedule,
    compose_with_algorithm,
    run_partition,
)
from repro.graphs import generators as gen
from repro.runtime.program import wait_rounds
from repro.verify import assert_h_partition


class TestDegreeBound:
    def test_values(self):
        assert degree_bound(1, 1.0) == 3
        assert degree_bound(3, 1.0) == 9
        assert degree_bound(2, 0.5) == 5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            degree_bound(0, 1.0)
        with pytest.raises(ValueError):
            degree_bound(2, 0.0)
        with pytest.raises(ValueError):
            degree_bound(2, 3.0)

    def test_length_bound(self):
        assert partition_length_bound(1, 1.0) == 1
        b1 = partition_length_bound(1000, 1.0)
        b2 = partition_length_bound(10**6, 1.0)
        assert b1 < b2  # grows with n (log-shaped)


class TestPartitionCorrectness:
    def test_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_partition(g, a=a)
        assert set(res.h_index) == set(g.vertices())
        assert_h_partition(g, res.h_index, res.A)

    def test_h_sets_listing(self):
        g = gen.union_of_forests(100, 2, seed=1)
        res = run_partition(g, a=2)
        sets = res.h_sets()
        assert sum(len(s) for s in sets) == g.n
        assert len(sets) == res.num_sets

    def test_bounded_degree_graph_single_set(self):
        g = gen.ring(50)  # degree 2 <= A for a=2
        res = run_partition(g, a=2)
        assert res.num_sets == 1
        assert res.metrics.worst_case == 1

    def test_worst_case_within_length_bound(self, forest_union_200):
        res = run_partition(forest_union_200, a=3)
        assert res.metrics.worst_case <= partition_length_bound(200, 1.0)

    def test_id_assignment_does_not_change_h_sets(self):
        # joining depends only on degrees, not on IDs
        g = gen.union_of_forests(80, 3, seed=2)
        r1 = run_partition(g, a=3, ids=gen.random_ids(80, seed=1))
        r2 = run_partition(g, a=3, ids=gen.random_ids(80, seed=9))
        assert r1.h_index == r2.h_index


class TestLemma61Decay:
    def test_active_counts_decay_bound(self):
        """Lemma 6.1: n_i <= (2 / (2+eps))^(i-1) * n."""
        for eps in (0.5, 1.0, 2.0):
            g = gen.union_of_forests(400, 3, seed=3, density=1.0)
            res = run_partition(g, a=3, eps=eps)
            n = g.n
            ratio = 2.0 / (2.0 + eps)
            for i, n_i in enumerate(res.metrics.active_trace, start=1):
                assert n_i <= ratio ** (i - 1) * n + 1e-9

    def test_roundsum_linear(self):
        """Lemma 6.2: RoundSum(V) = O(n) -- check the geometric-series
        constant (2+eps)/eps."""
        g = gen.union_of_forests(500, 3, seed=4)
        eps = 1.0
        res = run_partition(g, a=3, eps=eps)
        assert res.metrics.round_sum <= (2 + eps) / eps * g.n


class TestTheorem63Average:
    def test_average_constant_across_scales(self):
        """Theorem 6.3: the vertex-averaged complexity of Partition is O(1):
        it does not grow as n grows 16-fold."""
        avgs = []
        for n in (250, 1000, 4000):
            g = gen.union_of_forests(n, 3, seed=5)
            res = run_partition(g, a=3, eps=0.5)
            avgs.append(res.metrics.vertex_averaged)
        assert max(avgs) <= (2 + 0.5) / 0.5  # the Lemma 6.2 constant
        assert max(avgs) - min(avgs) < 1.0


class TestComposition:
    def test_blocking_schedule(self):
        s = blocking_schedule(5)
        assert [s(i) for i in (1, 2, 3)] == [1, 6, 11]
        with pytest.raises(ValueError):
            blocking_schedule(0)

    def test_corollary_64_shape(self):
        """Composing with a T_A-round dummy algorithm yields vertex-averaged
        complexity O(T_A) (Corollary 6.4)."""
        g = gen.union_of_forests(300, 3, seed=6)
        t_aux = 7

        def dummy(ctx, view, h, same):
            yield from wait_rounds(ctx, t_aux)
            return h

        res = compose_with_algorithm(g, a=3, per_set_algorithm=dummy, t_aux=t_aux)
        avg = res.metrics.vertex_averaged
        # every vertex pays at least t_aux; the average stays O(t_aux)
        assert t_aux <= avg <= 6 * (t_aux + 2)
        assert set(res.outputs.values()) >= {1}

    def test_composition_outputs_h_indices(self):
        g = gen.grid(6, 6)

        def report(ctx, view, h, same):
            return (h, sorted(same))
            yield  # pragma: no cover

        res = compose_with_algorithm(g, a=2, per_set_algorithm=report, t_aux=1)
        h_index = {v: out[0] for v, out in res.outputs.items()}
        assert_h_partition(g, h_index, degree_bound(2, 1.0))
        # same-set listings must be symmetric
        for v, (h, same) in res.outputs.items():
            for u in same:
                assert res.outputs[u][0] == h
                assert v in res.outputs[u][1]

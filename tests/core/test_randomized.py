"""Tests for the randomized algorithms (Section 9)."""

import pytest

from repro.core.randomized import run_aloglogn_coloring, run_rand_delta_plus_one
from repro.graphs import generators as gen
from repro.verify import assert_proper_coloring


class TestRandDeltaPlusOne:
    def test_proper_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_rand_delta_plus_one(g, seed=1)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    def test_palette_exact(self):
        g = gen.gnp(100, 0.08, seed=2)
        res = run_rand_delta_plus_one(g, seed=3)
        assert res.palette_bound == g.max_degree() + 1

    def test_different_seeds_different_colorings(self):
        g = gen.gnp(100, 0.08, seed=2)
        c1 = run_rand_delta_plus_one(g, seed=1).colors
        c2 = run_rand_delta_plus_one(g, seed=2).colors
        assert c1 != c2

    def test_same_seed_reproducible(self):
        g = gen.gnp(100, 0.08, seed=2)
        assert (
            run_rand_delta_plus_one(g, seed=5).colors
            == run_rand_delta_plus_one(g, seed=5).colors
        )

    def test_theorem_91_average_flat_worst_grows(self):
        """Theorem 9.1: the *same* executions have O(1)-flat averages while
        the worst case grows with n (log n w.h.p.)."""
        avgs, worsts = [], []
        for n in (200, 3200):
            g = gen.union_of_forests(n, 3, seed=4)
            m = run_rand_delta_plus_one(g, seed=7).metrics
            avgs.append(m.vertex_averaged)
            worsts.append(m.worst_case)
        assert abs(avgs[1] - avgs[0]) < 2.0
        assert worsts[1] > worsts[0]
        assert avgs[1] < worsts[1] / 3

    def test_average_over_seeds_small(self):
        g = gen.union_of_forests(500, 3, seed=5)
        avgs = [
            run_rand_delta_plus_one(g, seed=s).metrics.vertex_averaged
            for s in range(5)
        ]
        assert sum(avgs) / len(avgs) < 8  # O(1) w.h.p., ~4.5 in practice


class TestALogLogN:
    def test_proper_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_aloglogn_coloring(g, a=a, seed=1)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    def test_palette_bound_shape(self):
        """Theorem 9.2: O(a log log n) colors."""
        g = gen.union_of_forests(1000, 2, seed=2)
        res = run_aloglogn_coloring(g, a=2, seed=3)
        from math import floor
        from repro.analysis.logstar import ilog

        t = max(1, floor(2 * ilog(g.n, 2)))
        assert res.palette_bound == (t + 1) * (int(3 * 2) + 1)

    def test_theorem_92_average_flat(self):
        avgs = []
        for n in (300, 4800):
            g = gen.union_of_forests(n, 3, seed=6)
            res = run_aloglogn_coloring(g, a=3, seed=8)
            avgs.append(res.metrics.vertex_averaged)
        assert abs(avgs[1] - avgs[0]) < 2.5

    def test_phase_tags_disjoint(self):
        """Phase-1 colors are (c, h)-tuples, phase-2 colors plain ints --
        provably disjoint palettes."""
        g = gen.union_of_forests(600, 3, seed=7)
        res = run_aloglogn_coloring(g, a=3, seed=9)
        kinds = {type(c) for c in res.colors.values()}
        assert tuple in kinds  # phase 1 always non-empty

    def test_reproducible(self):
        g = gen.union_of_forests(200, 2, seed=8)
        assert (
            run_aloglogn_coloring(g, a=2, seed=4).colors
            == run_aloglogn_coloring(g, a=2, seed=4).colors
        )

"""Tests for the unknown-arboricity reduction (Procedure General-Partition,
referenced in Section 6.1)."""

import pytest

from repro.core.partition import run_general_partition, run_partition
from repro.graphs import generators as gen
from repro.graphs.arboricity import arboricity_exact
from repro.verify import assert_h_partition


def test_valid_h_partition_without_knowing_a(named_graph):
    name, g, a = named_graph
    if g.n == 0:
        return
    res = run_general_partition(g)
    assert set(res.h_index) == set(g.vertices())
    assert_h_partition(g, res.h_index, res.A)


def test_estimate_within_factor_two_of_true_arboricity():
    for a in (1, 2, 4, 6):
        g = gen.union_of_forests(150, a, seed=a)
        true_a = arboricity_exact(g)
        res = run_general_partition(g)
        assert res.a_estimate < 2 * max(true_a, 1) or res.a_estimate == 1


def test_phases_are_monotone_guesses():
    g = gen.gnp(120, 0.15, seed=3)  # arboricity well above 1
    res = run_general_partition(g)
    assert max(res.phase.values()) >= 1  # guess 1 cannot swallow this graph
    # vertices joining in later phases have later global H-indices
    by_phase = {}
    for v, p in res.phase.items():
        by_phase.setdefault(p, []).append(res.h_index[v])
    phases = sorted(by_phase)
    for p1, p2 in zip(phases, phases[1:]):
        assert max(by_phase[p1]) < min(by_phase[p2])


def test_average_stays_small_when_arboricity_is_small():
    """On easy (a = 1) graphs the first guess succeeds and the averaged
    cost matches plain Partition."""
    g = gen.random_tree(400, seed=4)
    known = run_partition(g, a=1)
    unknown = run_general_partition(g)
    assert unknown.metrics.vertex_averaged <= known.metrics.vertex_averaged + 1


def test_average_pays_only_constant_factor_on_dense_graphs():
    g = gen.union_of_forests(800, 4, seed=5)
    known = run_partition(g, a=4)
    unknown = run_general_partition(g)
    # three doubling phases (1, 2, 4) at worst: bounded blow-up
    assert unknown.metrics.vertex_averaged <= 60 * (known.metrics.vertex_averaged + 1)
    assert unknown.metrics.vertex_averaged < 80


def test_deterministic():
    g = gen.gnp(100, 0.08, seed=6)
    r1 = run_general_partition(g)
    r2 = run_general_partition(g)
    assert r1.h_index == r2.h_index and r1.phase == r2.phase

"""Tests for Procedure One-Plus-Eta-Arb-Col and Procedure Legal-Coloring
(Section 7.8.2)."""

import pytest

from repro.core.one_plus_eta import run_legal_coloring, run_one_plus_eta_coloring
from repro.graphs import generators as gen
from repro.verify import assert_proper_coloring


class TestOnePlusEta:
    def test_proper_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_one_plus_eta_coloring(g, a=a, C=3)
        assert_proper_coloring(g, res.colors)

    @pytest.mark.parametrize("C", [2, 3, 6])
    def test_various_C(self, C):
        g = gen.union_of_forests(150, 5, seed=1)
        res = run_one_plus_eta_coloring(g, a=5, C=C)
        assert_proper_coloring(g, res.colors)

    def test_rejects_bad_C(self):
        with pytest.raises(ValueError):
            run_one_plus_eta_coloring(gen.ring(5), a=2, C=1)

    def test_recursion_exercised_on_high_arboricity(self):
        """With a >= C the algorithm must actually split (paths longer than
        the pure-base case)."""
        g = gen.union_of_forests(200, 8, seed=2)
        res = run_one_plus_eta_coloring(g, a=8, C=3)
        assert_proper_coloring(g, res.colors)
        paths = {c[0] for c in res.colors.values()}
        assert any(len(p) >= 1 for p in paths)  # at least one split happened

    def test_colors_subquadratic_in_a(self):
        """The point of 7.8: far fewer colors than the O(a^2) algorithms
        on high-arboricity inputs."""
        a = 10
        g = gen.union_of_forests(400, a, seed=3)
        res = run_one_plus_eta_coloring(g, a=a, C=3)
        assert res.colors_used < a * a

    def test_deterministic(self):
        g = gen.union_of_forests(120, 6, seed=4)
        r1 = run_one_plus_eta_coloring(g, a=6, C=3)
        r2 = run_one_plus_eta_coloring(g, a=6, C=3)
        assert r1.colors == r2.colors
        assert r1.metrics.rounds == r2.metrics.rounds

    def test_random_ids(self):
        g = gen.union_of_forests(150, 6, seed=5)
        ids = gen.random_ids(g.n, seed=6)
        res = run_one_plus_eta_coloring(g, a=6, C=3, ids=ids)
        assert_proper_coloring(g, res.colors)


class TestLegalColoring:
    def test_proper_on_suite(self, named_graph):
        name, g, a = named_graph
        if g.n == 0:
            return
        res = run_legal_coloring(g, a=a, p=4)
        assert_proper_coloring(g, res.colors)

    def test_splits_until_arboricity_below_p(self):
        g = gen.union_of_forests(250, 9, seed=7)
        res = run_legal_coloring(g, a=9, p=4)
        assert_proper_coloring(g, res.colors)
        # with a=9 > p=4 at least one arbdefective split must occur
        assert any(len(c[0]) >= 1 for c in res.colors.values())

    def test_base_direct_when_a_below_p(self):
        g = gen.grid(8, 8)
        res = run_legal_coloring(g, a=2, p=4)
        assert_proper_coloring(g, res.colors)
        assert all(c[0] == () for c in res.colors.values())

    def test_default_p(self):
        g = gen.union_of_forests(100, 3, seed=8)
        res = run_legal_coloring(g, a=3)
        assert_proper_coloring(g, res.colors)


class TestLegalBranch:
    """Force the V \\ H -> Legal-Coloring transition (naturally requires
    peeling depth > 2 log log n, i.e. enormous graphs) via r_override."""

    def test_legal_branch_reached_and_proper(self):
        # 7-ary tree with a=2, eps=1 (A=6 < 7): one leaf layer peels per
        # round, so with r_override=1 the deeper layers fall into V \ H
        # while a = C keeps the run on the non-base (splitting) branch.
        g = gen.kary_tree(2401, 7)  # 4 full levels
        res = run_one_plus_eta_coloring(g, a=2, C=2, r_override=1)
        assert_proper_coloring(g, res.colors)
        paths = {c[0] for c in res.colors.values()}
        assert any(("L",) in p for p in paths), sorted(paths)[:5]

    def test_legal_branch_with_recursion(self):
        # higher arboricity so the eta split also happens before/after
        from repro.graphs import generators as g2

        g = g2.union_of_forests(500, 6, seed=9)
        res = run_one_plus_eta_coloring(g, a=6, C=3, r_override=1)
        assert_proper_coloring(g, res.colors)

    def test_r_override_zero_sets_everyone_legal(self):
        g = gen.kary_tree(200, 4)
        res = run_one_plus_eta_coloring(g, a=3, C=3, r_override=0)
        assert_proper_coloring(g, res.colors)
        assert all(("L",) in c[0] for c in res.colors.values())

"""Fault-stream invariance matrix + executor-fault (chaos) pins.

Two layers of the fault-tolerance contract live here:

**Model faults** (the adversary *inside* the algorithm): for every
algorithm with a fault-aware bulk kernel -- Luby MIS, Cole-Vishkin ring
coloring, defective coloring (Partition's matrix lives in
``test_shard.py``) -- the engines {fast, bulk in-process, sharded
k in {1, 2, 4}} must produce

* the identical fault event stream (``FaultCrash`` / ``FaultDrop``
  interleaved with ``RoundStart`` / ``RoundEnd`` in the fast engine's
  order),
* the identical metrics surface and outputs, and
* on legitimate non-termination (a drop stalls a vertex that will never
  be re-sent to), the identical watchdog active set --

because every crash/drop decision is a pure function of
``(seed, session round, vertex)`` counters, never of engine internals or
the shard count.  Completed runs additionally pass the
survivor-restricted safety check for their problem kind.

**Executor faults** (the worker process itself dies): a sharded run
SIGKILLed mid-round restarts from per-round checkpoints and completes
bit-identically to the unfaulted run; with retries exhausted it fails
fast with :class:`ShardError` -- never a hang -- and never leaks a
shared-memory segment.  Barrier waits carry a deadline and surface the
lagging shard through :class:`ShardTimeout`.
"""

import threading

import numpy as np
import pytest

import repro
import repro.obs as obs
from repro.bench.workloads import WORKLOADS
from repro.faults import CrashSpec, FaultPlan, MessageFaults, session
from repro.graphs import generators as gen
from repro.obs.events import (
    EventBus,
    FaultCrash,
    FaultDrop,
    RoundEnd,
    RoundStart,
)
from repro.obs.sinks import MemorySink
from repro.runtime import (
    RoundLimitExceeded,
    ShardError,
    engine_session,
    shard_session,
)
from repro.runtime import shard as rt_shard
from repro.zoo.checks import survivor_check

SHARD_COUNTS = (1, 2, 4)
SEEDS = (0, 1)

#: the matrix plans: strikes by (vertex -> round) and an 8% iid drop --
#: both exercised on every algorithm, both engines must agree on the
#: exact event stream they induce
PLANS = {
    "crash": FaultPlan(seed=11, crashes=CrashSpec(at={3: 2, 17: 3})),
    "drop": FaultPlan(seed=7, messages=MessageFaults(drop=0.08)),
}

ENGINES = (("bulk", None), ("k1", 1), ("k2", 2), ("k4", 4))


def _fingerprint(events):
    """The fault-relevant slice of the event stream, as plain records."""
    return [
        e.to_record()
        for e in events
        if isinstance(e, (FaultCrash, FaultDrop, RoundStart, RoundEnd))
    ]


def _run(thunk, plan, shards=None, bulk=False):
    """Run ``thunk`` under ``plan`` (and optionally the bulk engine /
    a shard session); return a comparable outcome tuple."""
    from contextlib import ExitStack

    sink = MemorySink()
    with ExitStack() as stack:
        if bulk:
            stack.enter_context(engine_session("bulk"))
        if shards is not None:
            stack.enter_context(shard_session(shards))
        inj = stack.enter_context(session(plan))
        stack.enter_context(obs.session(EventBus(sink)))
        try:
            res = thunk()
        except RoundLimitExceeded as e:
            return ("watchdog", tuple(sorted(e.active)), None, None, None)
    m = res.metrics
    surface = (m.rounds, tuple(m.active_trace), tuple(m.messages_per_round))
    return (
        "ok",
        _fingerprint(sink.events),
        surface,
        res,
        tuple(sorted(inj.crashed)),
    )


def _assert_matrix(thunk, plan, extract, check=None):
    """Fast-engine reference vs bulk + sharded {1,2,4}: identical
    outcome, events, metrics, outputs; survivor-check completed runs."""
    ref = _run(thunk, plan)
    if ref[0] == "ok" and check is not None:
        check(ref[3], set(ref[4]))
    for label, k in ENGINES:
        got = _run(thunk, plan, shards=k, bulk=True)
        if ref[0] == "watchdog":
            assert got[0] == "watchdog", f"{label}: completed, fast watchdogged"
            assert got[1] == ref[1], f"{label}: watchdog active sets differ"
            continue
        assert got[0] == "ok", f"{label}: watchdogged, fast completed"
        assert got[4] == ref[4], f"{label}: crashed sets differ"
        assert got[1] == ref[1], f"{label}: fault event streams differ"
        assert got[2] == ref[2], f"{label}: metrics surfaces differ"
        assert extract(got[3]) == extract(ref[3]), f"{label}: outputs differ"


# ---------------------------------------------------------------------------
# the invariance matrix: (luby, cole-vishkin, defective) x engines x plans
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("seed", SEEDS)
def test_luby_fault_matrix(plan_name, seed):
    g, _a = WORKLOADS["gnp_sparse"](64, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    plan = PLANS[plan_name]

    def check(res, crashed):
        # crash-stop keeps survivors independent; drop plans are NOT
        # drop-safe for Luby (a lost MIS announcement can yield adjacent
        # winners), so only crash outcomes get the safety check
        if plan_name == "crash":
            survivor_check("mis")(g, res, set(range(g.n)) - crashed)

    _assert_matrix(
        lambda: repro.run_luby_mis(g, ids=ids, seed=seed),
        plan,
        lambda r: (sorted(r.in_mis.items()), sorted(r.h_index.items())),
        check,
    )


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("seed", SEEDS)
def test_cole_vishkin_fault_matrix(plan_name, seed):
    n = 64
    g = gen.ring(n)
    ids = gen.random_ids(n, seed=1000 + seed)
    plan = PLANS[plan_name]

    def check(res, crashed):
        # Cole-Vishkin is NOT registered crash-safe (a vertex that keeps
        # its color while its predecessor reduces can collide), but it
        # never blocks: every survivor must terminate with a color (a
        # skipped reduce step legitimately leaves it above the clean
        # 3-color palette)
        for v in set(range(n)) - crashed:
            assert v in res.colors, f"survivor {v} never terminated"
            assert res.colors[v] >= 0

    _assert_matrix(
        lambda: repro.run_ring_three_coloring(g, ids=ids, seed=seed),
        plan,
        lambda r: (sorted(r.colors.items()), sorted(r.h_index.items())),
        check,
    )


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("seed", SEEDS)
def test_defective_fault_matrix(plan_name, seed):
    # rings keep the degree bound low enough for a real multi-step
    # schedule (high-A workloads get an empty schedule and terminate in
    # one round, which would make this matrix vacuous); mid-schedule
    # crashes/drops stall the victim's neighbors => both engines must
    # watchdog on the identical active set
    from repro.core.defective import run_defective_coloring
    from repro.verify import assert_defective_coloring

    n = 48 + seed
    g = gen.ring(n)
    ids = gen.random_ids(n, seed=1000 + seed)
    plan = PLANS[plan_name]

    def check(res, crashed):
        if not crashed:
            # completion means every needed step was delivered (a
            # dropped step stalls its receiver forever), so the full
            # defect bound holds
            assert_defective_coloring(g, res.colors, res.defect_bound)

    _assert_matrix(
        lambda: run_defective_coloring(g, 2, ids=ids, seed=seed),
        plan,
        lambda r: sorted(r.colors.items()),
        check,
    )


def test_defective_late_crash_completes_identically():
    """Strikes scheduled after the run ends exercise the faulted kernel
    end-to-end without killing anyone: outputs must equal the clean
    run's."""
    from repro.core.defective import run_defective_coloring

    g = gen.ring(48)
    ids = gen.random_ids(48, seed=5)
    clean = run_defective_coloring(g, 2, ids=ids, seed=0)
    plan = FaultPlan(seed=11, crashes=CrashSpec(at={3: 900, 17: 901}))
    for label, k in ENGINES:
        got = _run(
            lambda: run_defective_coloring(g, 2, ids=ids, seed=0),
            plan,
            shards=k,
            bulk=True,
        )
        assert got[0] == "ok", f"{label}: watchdogged"
        assert got[4] == (), f"{label}: late strikes must never land"
        assert sorted(got[3].colors.items()) == sorted(clean.colors.items())


# ---------------------------------------------------------------------------
# executor faults: SIGKILL chaos, fail-fast, leaks, timeouts, stats
# ---------------------------------------------------------------------------


def _partition_instance():
    g, a = WORKLOADS["gnp_sparse"](400, seed=0)
    return g, a


def test_chaos_sigkill_mid_run_restarts_bit_identical():
    """A worker SIGKILLed at round 2 is detected, the group restarts
    from the newest consistent checkpoint, and the completed run is
    bit-identical to the unfaulted one -- with the loss/restart surfaced
    in SHARD_STATS and as WorkerLost/WorkerRestart events."""
    g, a = _partition_instance()
    with engine_session("bulk"), shard_session(2):
        ref = repro.run_partition(g, a=a)

    rt_shard.reset_stats()
    sink = MemorySink()
    rt_shard.CHAOS.update({"die_at": (1, 2)})
    try:
        with engine_session("bulk"), shard_session(2), obs.session(
            EventBus(sink)
        ):
            got = repro.run_partition(g, a=a)
    finally:
        rt_shard.CHAOS.clear()

    assert got.h_index == ref.h_index
    assert got.metrics.active_trace == ref.metrics.active_trace
    assert got.metrics.messages_per_round == ref.metrics.messages_per_round

    stats = rt_shard.stats_snapshot()
    assert stats["worker_lost"] >= 1
    assert stats["worker_restart"] >= 1
    assert stats["checkpoints"] >= 1
    kinds = {type(e).__name__ for e in sink.events}
    assert "WorkerLost" in kinds
    assert "WorkerRestart" in kinds
    assert rt_shard.active_segments() == []


def test_chaos_sigkill_without_retries_fails_fast():
    """Retries exhausted (or no consistent checkpoint) => ShardError
    with the dead worker named -- never a hang -- and no leaked
    segments."""
    g, a = _partition_instance()
    rt_shard.CHAOS.update({"die_at": (0, 1), "retries": 0})
    try:
        with engine_session("bulk"), shard_session(2):
            with pytest.raises(ShardError, match=r"worker\(s\) \[0\] died"):
                repro.run_partition(g, a=a)
    finally:
        rt_shard.CHAOS.clear()
    assert rt_shard.active_segments() == []


def test_chaos_sigkill_under_fault_plan_replays_adversary():
    """Executor faults compose with model faults: the restarted run
    replays the counter-based crash adversary bit-identically."""
    g, a = _partition_instance()
    plan = FaultPlan(seed=11, crashes=CrashSpec(at={3: 1, 17: 2}))
    ref = _run(lambda: repro.run_partition(g, a=a), plan, shards=2, bulk=True)
    assert ref[0] == "ok"

    rt_shard.CHAOS.update({"die_at": (1, 2)})
    try:
        got = _run(
            lambda: repro.run_partition(g, a=a), plan, shards=2, bulk=True
        )
    finally:
        rt_shard.CHAOS.clear()
    assert got[0] == "ok"
    assert got[4] == ref[4]
    assert got[1] == ref[1]
    assert got[2] == ref[2]
    assert got[3].h_index == ref[3].h_index


def test_shared_arrays_context_manager_releases_segments():
    """SharedArrays is a context manager; exit (even on error) unlinks
    every published segment -- the leak counter must read zero."""
    from repro.runtime.shard import SharedArrays, active_segments

    with SharedArrays() as shared:
        arr = shared.publish("x", shape=(8,), dtype=np.int64)
        arr[:] = 7
        assert len(active_segments()) >= 1
    assert active_segments() == []

    with pytest.raises(RuntimeError, match="boom"):
        with SharedArrays() as shared:
            shared.publish("y", shape=(4,), dtype=np.int64)
            raise RuntimeError("boom")
    assert active_segments() == []


def test_shard_timeout_names_lagging_shard():
    """A barrier deadline miss raises ShardTimeout (a ShardError) whose
    ``lagging`` names the shard with the fewest recorded waits."""
    from repro.runtime.shard import ShardComm, ShardTimeout, _SCRATCH_LANES

    rt_shard.reset_stats()
    barrier = threading.Barrier(2)  # nobody else ever arrives
    scratch = np.zeros((2, 2, _SCRATCH_LANES), dtype=np.int64)
    hb = np.zeros((2, 2), dtype=np.float64)
    comm = ShardComm(barrier, scratch, 0, 2, timeout=0.05, hb=hb)
    with pytest.raises(ShardTimeout, match="lagging shard: 1") as err:
        comm.sync()
    assert isinstance(err.value, ShardError)
    assert err.value.lagging == 1
    assert rt_shard.stats_snapshot()["barrier_timeouts"] == 1

    # allreduce rides the same guarded wait
    barrier2 = threading.Barrier(2)
    comm2 = ShardComm(barrier2, scratch, 1, 2, timeout=0.05, hb=hb)
    with pytest.raises(ShardTimeout):
        comm2.allreduce(1, 2, 3)


def test_stats_snapshot_and_reset():
    rt_shard.reset_stats()
    base = rt_shard.stats_snapshot()
    assert base == {
        "worker_lost": 0,
        "worker_restart": 0,
        "checkpoints": 0,
        "barrier_timeouts": 0,
    }
    rt_shard.SHARD_STATS["worker_lost"] += 1
    snap = rt_shard.stats_snapshot()
    assert snap["worker_lost"] == 1
    snap["worker_lost"] = 99  # snapshots are copies, not views
    assert rt_shard.SHARD_STATS["worker_lost"] == 1
    rt_shard.reset_stats()
    assert rt_shard.stats_snapshot()["worker_lost"] == 0


# ---------------------------------------------------------------------------
# the fuzz population grows with the registry
# ---------------------------------------------------------------------------


def test_fuzz_population_includes_luby_mis():
    """Flipping ``crash_safe`` in the registry is all it takes: the
    fuzzer's default population derives from ``zoo.crash_safe()``."""
    from repro.faults.fuzz import default_population

    pop = default_population()
    assert "luby-mis" in pop
    assert "partition" in pop


def test_luby_crash_fuzz_case_never_violates():
    """A crash-only plan on luby-mis classifies as valid or watchdog
    non-termination -- never a survivor-safety violation."""
    from repro.faults.harness import (
        OUTCOME_NONTERMINATION,
        OUTCOME_VALID,
        FuzzCase,
        run_case,
    )

    for seed in SEEDS:
        case = FuzzCase(
            algorithm="luby-mis",
            workload="gnp_sparse",
            n=64,
            seed=seed,
            plan=FaultPlan(
                seed=20 + seed, crashes=CrashSpec(at={3: 1}, hazard=0.01)
            ),
        )
        outcome = run_case(case)
        assert not outcome.failed, outcome.describe()
        assert outcome.status in (OUTCOME_VALID, OUTCOME_NONTERMINATION)

"""Tests for the program-writing helpers."""

from repro.graphs.graph import Graph
from repro.runtime.network import SyncNetwork
from repro.runtime.program import collect_from, exchange, wait_rounds, wait_until_round


def test_wait_rounds():
    g = Graph(1)

    def program(ctx):
        yield from wait_rounds(ctx, 4)
        return ctx.round

    res = SyncNetwork(g).run(program)
    assert res.outputs[0] == 5
    assert res.metrics.rounds == (5,)


def test_wait_until_round():
    g = Graph(1)

    def program(ctx):
        yield from wait_until_round(ctx, 7)
        assert ctx.round == 7
        yield from wait_until_round(ctx, 3)  # already past: no-op
        return ctx.round

    res = SyncNetwork(g).run(program)
    assert res.outputs[0] == 7


def test_exchange():
    g = Graph(2, [(0, 1)])

    def program(ctx):
        replies = yield from exchange(ctx, f"v{ctx.v}")
        return replies

    res = SyncNetwork(g).run(program)
    assert res.outputs[0] == {1: "v1"}
    assert res.outputs[1] == {0: "v0"}


def test_collect_from_messages():
    g = Graph(3, [(0, 1), (0, 2)])

    def program(ctx):
        if ctx.v != 0:
            yield from wait_rounds(ctx, ctx.v)  # stagger senders
            ctx.send(0, f"data-{ctx.v}")
            yield
            return None
        store = {}
        yield from collect_from(ctx, {1, 2}, store)
        return store

    res = SyncNetwork(g).run(program)
    assert res.outputs[0] == {1: "data-1", 2: "data-2"}


def test_collect_from_halted_outputs():
    g = Graph(2, [(0, 1)])

    def program(ctx):
        if ctx.v == 1:
            return "one's output"
        store = {}
        yield from collect_from(ctx, {1}, store)
        return store

    res = SyncNetwork(g).run(program)
    assert res.outputs[0] == {1: "one's output"}

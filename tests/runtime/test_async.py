"""The event-queue asynchronous executor vs the global-round barrier.

The async scheduler (:mod:`repro.runtime.async_sched`) is an
alpha-synchronizer: for *every* delay assignment the inbox a vertex sees
in local round r is exactly the barrier's round-(r-1) -> r delivery, so
the entire content surface -- outputs, per-vertex rounds, commit rounds,
active trace, traffic trace, crash sets -- must be mode-invariant, under
fault plans included.  What the async mode adds is the virtual-time
dimension (``RunResult.times``); these tests pin both the invariance and
the time accounting (fixed unit delays reproduce round counts exactly).
"""

import pytest

from repro.bench.workloads import make_workload
from repro.faults import CrashSpec, FaultPlan, MessageFaults
from repro.graphs import generators as gen
from repro.runtime import (
    DELAY_DISTS,
    DelaySpec,
    MODES,
    RoundLimitExceeded,
    SyncNetwork,
    current_mode,
    mode_session,
    run_async,
)
from repro.runtime.scheduler import current_delays

FAMILIES = ("forest_union_a3", "gnp_sparse", "ring", "deep_tree")
N = 80


# ---------------------------------------------------------------------------
# Program zoo (deterministic given graph/ids/seed via ctx.rng)
# ---------------------------------------------------------------------------

def prog_wave(ctx):
    """Flood the max id seen; randomized per-vertex lifetimes."""
    best = ctx.id
    lifetime = 2 + ctx.rng.randrange(5)
    for _ in range(lifetime):
        ctx.broadcast(("w", best))
        yield
        for msgs in ctx.inbox.values():
            for _tag, x in msgs:
                if x > best:
                    best = x
    return best


def prog_luby_ish(ctx):
    """Priority contest with halting -- exercises halted/newly_halted."""
    active = set(ctx.neighbors)
    for attempt in range(1, 12):
        prio = (ctx.rng.random(), ctx.id)
        ctx.broadcast(("p", attempt, prio))
        yield
        active -= set(ctx.newly_halted)
        prios = {}
        for u, msgs in ctx.inbox.items():
            for _tag, att, p in msgs:
                if att == attempt:
                    prios[u] = p
        if all(u not in active or prios.get(u, (2.0, -1)) > prio for u in active):
            return attempt
    return 0


def prog_lockstep(ctx):
    """Exactly 6 token-gated rounds for everyone -- with fixed unit
    delays, local round r executes at t = r - 1 for every vertex."""
    best = ctx.id
    for _ in range(6):
        ctx.broadcast(("l", best))
        yield
        for msgs in ctx.inbox.values():
            for _tag, x in msgs:
                best = max(best, x)
    return best


def prog_commit_then_linger(ctx):
    """Commits in round 1, relays for 4 more rounds -- pins output times."""
    ctx.commit(ctx.id % 2)
    for _ in range(4):
        ctx.broadcast(("x",))
        yield
    return ctx.id % 2


PROGRAMS = (prog_wave, prog_luby_ish, prog_commit_then_linger)


def _run(program, mode="sync", workload="forest_union_a3", seed=0,
         delays=None, faults=None, n=N):
    g, _a = make_workload(workload)(n, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    net = SyncNetwork(g, ids=ids, seed=seed)
    if mode == "sync":
        return net.run(program, max_rounds=256, faults=faults)
    return run_async(net, program, max_rounds=256, faults=faults,
                     delays=delays)


def _assert_content_identical(sync, async_):
    assert async_.outputs == sync.outputs
    assert async_.metrics.rounds == sync.metrics.rounds
    assert async_.metrics.active_trace == sync.metrics.active_trace
    assert (
        async_.metrics.messages_per_round == sync.metrics.messages_per_round
    )
    assert async_.output_rounds == sync.output_rounds
    assert async_.crashed == sync.crashed


# ---------------------------------------------------------------------------
# Content invariance
# ---------------------------------------------------------------------------

class TestContentInvariance:
    @pytest.mark.parametrize("program", PROGRAMS)
    @pytest.mark.parametrize("workload", FAMILIES)
    @pytest.mark.parametrize("dist", DELAY_DISTS)
    def test_async_matches_sync_for_every_delay_model(
        self, program, workload, dist
    ):
        sync = _run(program, "sync", workload)
        delays = DelaySpec(dist=dist, scale=1.7, seed=5)
        async_ = _run(program, "async", workload, delays=delays)
        _assert_content_identical(sync, async_)
        assert async_.times is not None and sync.times is None

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fault_plans_replay_identically(self, seed):
        plan = FaultPlan(
            seed=seed,
            crashes=CrashSpec(hazard=0.03),
            messages=MessageFaults(drop=0.05, duplicate=0.05, delay=0.05,
                                   max_delay=2),
        )
        sync = _run(prog_wave, "sync", "gnp_sparse", seed=seed, faults=plan)
        async_ = _run(
            prog_wave, "async", "gnp_sparse", seed=seed, faults=plan,
            delays=DelaySpec(dist="exp", scale=0.8, seed=seed),
        )
        _assert_content_identical(sync, async_)
        assert async_.crashed  # hazard 0.03 on n=80 does crash someone

    def test_mode_session_routes_network_run(self):
        # SyncNetwork.run itself dispatches to the event queue inside
        # mode_session("async") -- the seam drivers rely on.
        g, _a = make_workload("forest_union_a3")(40, seed=0)
        ids = gen.random_ids(g.n, seed=1)
        sync = SyncNetwork(g, ids=ids, seed=0).run(prog_wave, max_rounds=64)
        with mode_session("async", delays=DelaySpec(dist="uniform")):
            async_ = SyncNetwork(g, ids=ids, seed=0).run(
                prog_wave, max_rounds=64
            )
        _assert_content_identical(sync, async_)
        assert async_.times is not None


# ---------------------------------------------------------------------------
# Virtual-time accounting
# ---------------------------------------------------------------------------

class TestTimeAccounting:
    def test_fixed_unit_delays_reproduce_round_counts(self):
        # On a connected graph where every vertex stays token-gated until
        # it halts, round r executes at t = r - 1, so the normalized
        # completion times equal the round counts exactly.
        res = _run(prog_lockstep, "async", "ring", delays=DelaySpec())
        t = res.times
        assert t.normalized_times == tuple(float(r) for r in res.metrics.rounds)
        assert t.vertex_averaged_time == res.metrics.vertex_averaged
        assert t.worst_case_time == float(res.metrics.worst_case)

    def test_commit_times_drive_averaged_output_time(self):
        res = _run(prog_commit_then_linger, "async", "ring",
                   delays=DelaySpec())
        t = res.times
        # everyone commits in round 1 (t = 0) but halts at round 5
        assert t.averaged_output_time == 1.0
        assert t.vertex_averaged_time == 5.0

    def test_replay_is_deterministic(self):
        d = DelaySpec(dist="exp", scale=1.3, seed=9)
        r1 = _run(prog_luby_ish, "async", "gnp_sparse", delays=d)
        r2 = _run(prog_luby_ish, "async", "gnp_sparse", delays=d)
        assert r1.times.times == r2.times.times
        assert r1.outputs == r2.outputs

    def test_delay_seed_changes_times_not_content(self):
        r1 = _run(prog_wave, "async", "gnp_sparse",
                  delays=DelaySpec(dist="exp", seed=1))
        r2 = _run(prog_wave, "async", "gnp_sparse",
                  delays=DelaySpec(dist="exp", seed=2))
        assert r1.outputs == r2.outputs
        assert r1.metrics.rounds == r2.metrics.rounds
        assert r1.times.times != r2.times.times

    def test_normalization_uses_mean_delay(self):
        r = _run(prog_lockstep, "async", "ring", delays=DelaySpec(scale=4.0))
        # fixed delay 4: round r at t = 4 (r - 1); normalized back to r
        assert r.times.mean_delay == 4.0
        assert r.times.normalized_times == tuple(
            float(x) for x in r.metrics.rounds
        )

    def test_watchdog_fires_in_async_mode(self):
        def forever(ctx):
            while True:
                ctx.broadcast(("ping",))
                yield

        g = gen.ring(12)
        net = SyncNetwork(g, ids=list(range(12)), seed=0)
        with pytest.raises(RoundLimitExceeded):
            run_async(net, forever, max_rounds=20)


# ---------------------------------------------------------------------------
# DelaySpec and the mode seam
# ---------------------------------------------------------------------------

class TestDelaySpec:
    def test_unknown_dist_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            DelaySpec(dist="gamma")

    @pytest.mark.parametrize("scale", [0.0, -1.0])
    def test_nonpositive_scale_rejected(self, scale):
        with pytest.raises(ValueError, match="scale"):
            DelaySpec(scale=scale)

    def test_roundtrip_and_describe(self):
        d = DelaySpec(dist="uniform", scale=2.5, seed=7)
        assert DelaySpec.from_dict(d.to_dict()) == d
        assert "uniform" in d.describe() and "seed=7" in d.describe()

    def test_draw_is_pure_and_distinct_per_edge(self):
        d = DelaySpec(dist="exp", scale=1.0, seed=0)
        assert d.draw(1, 2, 3) == d.draw(1, 2, 3)
        assert d.draw(1, 2, 3) != d.draw(2, 1, 3)

    @pytest.mark.parametrize("dist", DELAY_DISTS)
    def test_all_dists_have_mean_scale(self, dist):
        d = DelaySpec(dist=dist, scale=2.0, seed=0)
        draws = [d.draw(0, 1, r) for r in range(2000)]
        assert abs(sum(draws) / len(draws) - 2.0) < 0.15


class TestModeSession:
    def test_default_is_sync(self):
        assert current_mode() == "sync"
        assert current_delays() is None

    def test_nesting_innermost_wins(self):
        d = DelaySpec(dist="exp")
        with mode_session("async", delays=d):
            assert current_mode() == "async"
            assert current_delays() is d
            with mode_session("sync"):
                assert current_mode() == "sync"
            assert current_mode() == "async"
        assert current_mode() == "sync"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            mode_session("warp")

    def test_modes_constant(self):
        assert MODES == ("sync", "async")

"""Differential equivalence: fast vs reference vs bulk engines.

:class:`repro.runtime.network.SyncNetwork` (pooled mail slots, CSR
fan-out, broadcast fast path) must replay any vertex program with results
identical to :class:`repro.runtime.reference.ReferenceSyncNetwork` (the
seed implementation, kept as the executable specification).  These tests
replay randomized programs exercising every observable engine feature --
``ctx.send``, ``ctx.broadcast``, ``ctx.send_many``, ``ctx.commit``,
``ctx.inbox``, ``ctx.halted`` / ``ctx.newly_halted``, final-round sends --
over every workload family and several seeds, and compare the complete
:class:`RunResult` surface plus the per-round :class:`Trace` records.

The three-way matrix at the bottom extends the pin to the columnar bulk
engine: every driver with a bulk twin (``repro.core.bulk.BULK_DRIVERS``)
must produce bit-identical outputs *and* round/message accounting under
all three engines, across the workload families and several seeds; bulk
runs under an active fault session must refuse loudly rather than skip
the adversary.
"""

import pytest

from repro.bench.workloads import WORKLOADS
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork
from repro.runtime.trace import Trace, traced

# every family the benchmark tables quantify over (>= 5 required)
FAMILIES = sorted(WORKLOADS)
SEEDS = (0, 1, 2)
N = 120


# ---------------------------------------------------------------------------
# Program zoo: each exercises a different slice of the engine's semantics.
# All are deterministic given (graph, ids, seed) via ctx.rng.
# ---------------------------------------------------------------------------

def prog_broadcast_staggered(ctx):
    """Broadcast-heavy with randomized per-vertex lifetimes."""
    lifetime = 1 + ctx.rng.randrange(6)
    total = 0
    for r in range(lifetime):
        ctx.broadcast(("beat", ctx.id, r))
        yield
        for u, msgs in ctx.inbox.items():
            total += len(msgs)
    return (ctx.id, total)


def prog_send_gossip(ctx):
    """Explicit sends to random active neighbors; reacts to newly_halted."""
    best = ctx.id
    seen_halt = 0
    for r in range(8):
        nbrs = ctx.active_neighbors()
        if nbrs:
            # a couple of targeted sends plus a bundle to one neighbor
            u = nbrs[ctx.rng.randrange(len(nbrs))]
            ctx.send(u, best)
            ctx.send(u, ("again", best))
            ctx.send_many(nbrs[:2], ("bundle", r))
        yield
        for u, msgs in ctx.inbox.items():
            for m in msgs:
                if isinstance(m, int) and m > best:
                    best = m
        seen_halt += len(ctx.newly_halted)
        for u in ctx.newly_halted:
            out = ctx.halted[u]
            if isinstance(out, tuple) and isinstance(out[0], int) and out[0] > best:
                best = out[0]
        if ctx.rng.random() < 0.25:
            # final-round send: delivered to live neighbors next round
            ctx.broadcast(("parting", ctx.id))
            return (best, seen_halt)
    return (best, seen_halt)


def prog_commit_then_linger(ctx):
    """Commit early, keep relaying, terminate later (Feuilloley's first
    definition): output_rounds must differ from termination rounds."""
    commit_at = 1 + ctx.rng.randrange(3)
    linger = ctx.rng.randrange(4)
    for r in range(commit_at):
        ctx.broadcast(("pre", r))
        yield
    ctx.commit(("out", ctx.id, ctx.round))
    for r in range(linger):
        ctx.broadcast(("relay", r, sorted(ctx.inbox)))
        yield
    return None  # output fixed by the commit


def prog_collect_wave(ctx):
    """Waits on specific neighbors; mixes halted-notice reads with inbox."""
    parents = [u for u in ctx.neighbors if ctx.neighbor_ids[u] > ctx.id]
    got = {}
    ctx.broadcast(("me", ctx.id))
    yield
    waited = 0
    while len(got) < len(parents) and waited < 10:
        for u in parents:
            if u in ctx.inbox:
                got[u] = ctx.inbox[u][-1]
            elif u in ctx.halted:
                got[u] = ctx.halted[u]
        if len(got) < len(parents):
            ctx.broadcast(("still-waiting", waited))
            yield
            waited += 1
    return (ctx.active_degree(), tuple(sorted(got)))


def prog_mixed_chatter(ctx):
    """Interleaves broadcast and sends in one round (ordering-sensitive:
    payload bundles to a receiver must keep send order)."""
    for r in range(5):
        nbrs = ctx.active_neighbors()
        if nbrs:
            u = nbrs[r % len(nbrs)]
            ctx.send(u, ("a", r))
            ctx.broadcast(("b", r))
            ctx.send(u, ("c", r))
        yield
        bundle = tuple(
            (u, tuple(map(tuple, msgs))) for u, msgs in sorted(ctx.inbox.items())
        )
        if ctx.rng.random() < 0.3:
            return bundle
    return None


PROGRAMS = {
    "broadcast_staggered": prog_broadcast_staggered,
    "send_gossip": prog_send_gossip,
    "commit_then_linger": prog_commit_then_linger,
    "collect_wave": prog_collect_wave,
    "mixed_chatter": prog_mixed_chatter,
}


def _run_both(family, seed, program, with_trace=False):
    from repro.graphs import generators as gen

    wl = WORKLOADS[family]
    g, _a = wl(N, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    results = []
    traces = []
    for cls in (SyncNetwork, ReferenceSyncNetwork):
        if with_trace:
            trace = Trace()
            res = cls(g, ids=ids, seed=seed).run(traced(program, trace))
            traces.append(trace)
        else:
            res = cls(g, ids=ids, seed=seed).run(program)
        results.append(res)
    return results, traces


def _assert_equal_results(fast, ref):
    assert fast.outputs == ref.outputs
    assert fast.metrics.rounds == ref.metrics.rounds
    assert fast.metrics.active_trace == ref.metrics.active_trace
    assert fast.metrics.messages_per_round == ref.metrics.messages_per_round
    assert fast.output_rounds == ref.output_rounds
    # both engines agree with Equation (1)
    assert fast.metrics.check_active_trace()
    assert ref.metrics.check_active_trace()


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_on_gossip(family, seed):
    (fast, ref), _ = _run_both(family, seed, prog_send_gossip)
    _assert_equal_results(fast, ref)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_on_broadcast(family, seed):
    (fast, ref), _ = _run_both(family, seed, prog_broadcast_staggered)
    _assert_equal_results(fast, ref)


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("family", ["forest_union_a3", "star_forest", "deep_tree"])
def test_engines_agree_across_programs(program_name, family):
    (fast, ref), _ = _run_both(family, 0, PROGRAMS[program_name])
    _assert_equal_results(fast, ref)


@pytest.mark.parametrize("family", ["forest_union_a3", "planar_grid", "caterpillar"])
@pytest.mark.parametrize("seed", SEEDS)
def test_commit_and_trace_golden(family, seed):
    """Committed-then-terminated vertices report identical output_rounds
    and identical Trace records (terminations, commits, per-round message
    counts) under both engines."""
    (fast, ref), (t_fast, t_ref) = _run_both(
        family, seed, prog_commit_then_linger, with_trace=True
    )
    _assert_equal_results(fast, ref)
    # commit rounds strictly before termination rounds for lingerers
    assert any(
        o < r for o, r in zip(fast.output_rounds, fast.metrics.rounds)
    ) or all(o == r for o, r in zip(fast.output_rounds, fast.metrics.rounds))
    assert fast.output_metrics.rounds == ref.output_metrics.rounds
    assert t_fast.records == t_ref.records
    assert [r.committed for r in t_fast.records] == [
        r.committed for r in t_ref.records
    ]


@pytest.mark.parametrize("family", ["ring", "gnp_sparse"])
def test_trace_equivalence_on_chatter(family):
    (fast, ref), (t_fast, t_ref) = _run_both(
        family, 1, prog_mixed_chatter, with_trace=True
    )
    _assert_equal_results(fast, ref)
    assert t_fast.records == t_ref.records


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_event_streams_identical(family, seed):
    """The instrumentation layer sees the *same execution* from both
    engines: the full typed event stream (round boundaries, every send,
    broadcast, commit, halt, and drop, in order) is bit-identical."""
    from repro.graphs import generators as gen
    from repro.obs.events import EventBus
    from repro.obs.sinks import MemorySink

    wl = WORKLOADS[family]
    g, _a = wl(N, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    streams = []
    for cls in (SyncNetwork, ReferenceSyncNetwork):
        mem = MemorySink()
        cls(g, ids=ids, seed=seed).run(prog_send_gossip, bus=EventBus(mem))
        streams.append(mem.events)
    fast_events, ref_events = streams
    assert fast_events == ref_events
    assert any(e.kind == "send" for e in fast_events)


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_event_streams_identical_across_programs(program_name):
    from repro.graphs import generators as gen
    from repro.obs.events import EventBus
    from repro.obs.sinks import MemorySink

    wl = WORKLOADS["forest_union_a3"]
    g, _a = wl(N, seed=2)
    ids = gen.random_ids(g.n, seed=1002)
    streams = []
    for cls in (SyncNetwork, ReferenceSyncNetwork):
        mem = MemorySink()
        cls(g, ids=ids, seed=2).run(PROGRAMS[program_name], bus=EventBus(mem))
        streams.append(mem.events)
    assert streams[0] == streams[1]


# ---------------------------------------------------------------------------
# Three-way matrix: every bulk-capable driver, fast vs reference vs bulk
# ---------------------------------------------------------------------------

from repro.runtime import engine_session  # noqa: E402


def _metrics_surface(m):
    return (
        m.rounds,
        m.active_trace,
        m.messages_per_round,
        m.vertex_averaged,
        m.worst_case,
        m.round_sum,
        m.total_messages,
    )


def _instance(family, seed, n=N):
    from repro.graphs import generators as gen

    g, a = WORKLOADS[family](n, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    return g, a, ids


def _three_way(run):
    """Run ``run()`` under each engine session; returns {engine: result}."""
    out = {"fast": run()}
    with engine_session("reference"):
        out["reference"] = run()
    with engine_session("bulk"):
        out["bulk"] = run()
    return out


def _assert_three_way(results, payload):
    fast = results["fast"]
    for engine in ("reference", "bulk"):
        other = results[engine]
        assert payload(other) == payload(fast), engine
        assert _metrics_surface(other.metrics) == _metrics_surface(fast.metrics), engine
    assert fast.metrics.check_active_trace()
    assert results["bulk"].metrics.check_active_trace()


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_three_way_partition(family, seed):
    import repro

    g, a, ids = _instance(family, seed)
    results = _three_way(lambda: repro.run_partition(g, a=a, ids=ids))
    _assert_three_way(results, lambda r: r.h_index)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_three_way_luby_mis(family, seed):
    import repro

    g, _a, ids = _instance(family, seed)
    results = _three_way(lambda: repro.run_luby_mis(g, ids=ids, seed=seed))
    _assert_three_way(results, lambda r: (r.in_mis, r.h_index))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", [3, 8, 120])
def test_three_way_cole_vishkin(seed, n):
    import repro
    from repro.graphs import generators as gen

    g = gen.ring(n)
    ids = gen.random_ids(n, seed=1000 + seed)
    results = _three_way(lambda: repro.run_ring_three_coloring(g, ids=ids))
    _assert_three_way(results, lambda r: r.colors)


@pytest.mark.parametrize("family", ["forest_union_a3", "star_forest", "gnp_sparse"])
@pytest.mark.parametrize("d", [1, 3])
def test_three_way_defective_coloring(family, d):
    import repro

    g, _a, ids = _instance(family, seed=d)
    results = _three_way(lambda: repro.run_defective_coloring(g, d=d, ids=ids))
    _assert_three_way(results, lambda r: (r.colors, r.palette_bound, r.defect_bound))


@pytest.mark.parametrize("driver", ["run_partition", "run_luby_mis"])
def test_bulk_fault_sessions_delegate_and_agree(driver):
    """A live crash/drop fault session routes the bulk twin through its
    fault-aware sharded kernel (in-process), replaying the fast engine's
    counter-based adversary exactly; only duplicate/delay plans -- which
    have no receiver-side replay -- are refused loudly."""
    import repro
    from repro import faults as flt
    from repro.faults import CrashSpec, FaultPlan, MessageFaults
    from repro.runtime import BulkUnsupported

    g, a, ids = _instance("forest_union_a3", seed=0, n=40)
    plan = FaultPlan(seed=1, crashes=CrashSpec(at={0: 2}))
    run = {
        "run_partition": lambda: repro.run_partition(g, a=a, ids=ids),
        "run_luby_mis": lambda: repro.run_luby_mis(g, ids=ids, seed=0),
    }[driver]
    extract = {
        "run_partition": lambda r: r.h_index,
        "run_luby_mis": lambda r: r.in_mis,
    }[driver]
    with flt.session(plan.injector()):
        ref = run()
    with engine_session("bulk"), flt.session(plan.injector()):
        got = run()
    assert extract(got) == extract(ref)
    assert got.metrics.active_trace == ref.metrics.active_trace

    dup = FaultPlan(seed=1, messages=MessageFaults(duplicate=0.5))
    with engine_session("bulk"), flt.session(dup.injector()):
        with pytest.raises(BulkUnsupported, match="duplicate/delay"):
            run()


def test_newly_halted_and_inbox_views_agree():
    """Spot-check the per-round *views* (inbox dict contents, newly_halted
    sets) agree between engines, not just the aggregate result."""
    from repro.graphs import generators as gen

    g = gen.star(8)
    logs = {}

    def make_program(tag):
        def program(ctx):
            log = logs.setdefault(tag, {}).setdefault(ctx.v, [])
            for r in range(3 + (ctx.v % 3)):
                ctx.broadcast(("r", r))
                yield
                log.append(
                    (
                        ctx.round,
                        sorted((u, tuple(ms)) for u, ms in ctx.inbox.items()),
                        sorted(ctx.newly_halted),
                        sorted(ctx.halted),
                    )
                )
            return ctx.v

        return program

    SyncNetwork(g).run(make_program("fast"))
    ReferenceSyncNetwork(g).run(make_program("ref"))
    assert logs["fast"] == logs["ref"]

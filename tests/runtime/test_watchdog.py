"""Max-rounds exhaustion: the typed non-termination watchdog.

Both engines must convert a run that exceeds ``max_rounds`` into a
:class:`~repro.runtime.network.RoundLimitExceeded` -- a subclass of the
legacy :class:`MaxRoundsExceeded` -- that names the still-active vertices
and carries a per-vertex state summary (round, active/halted neighbor
counts, committed flag), so a hung run is a diagnosis, not a mystery.
"""

import pytest

from repro.faults import CrashSpec, FaultPlan
from repro.graphs import generators as gen
from repro.runtime import (
    MaxRoundsExceeded,
    ReferenceSyncNetwork,
    RoundLimitExceeded,
    SyncNetwork,
    default_max_rounds,
)

ENGINES = (SyncNetwork, ReferenceSyncNetwork)


def prog_forever(ctx):
    while True:
        ctx.broadcast("ping")
        yield


def prog_half_commit_then_spin(ctx):
    if ctx.id % 2 == 0:
        ctx.commit(("stuck", ctx.id))
    while True:
        yield


@pytest.mark.parametrize("engine", ENGINES)
def test_watchdog_fires_with_typed_error(engine):
    g = gen.ring(8)
    with pytest.raises(RoundLimitExceeded) as exc:
        engine(g).run(prog_forever, max_rounds=5)
    err = exc.value
    assert err.limit == 5
    assert sorted(err.active) == list(range(8))
    # per-vertex summaries: (v, round, active_degree, halted, committed)
    assert len(err.summaries) == 8
    for v, rnd, active_deg, halted, committed in err.summaries:
        assert rnd == 5  # the last round the vertex actually executed
        assert active_deg == 2
        assert halted == 0
        assert committed is False
    assert "8 vertices still active after 5 rounds" in str(err)
    assert "v0" in str(err)


@pytest.mark.parametrize("engine", ENGINES)
def test_watchdog_is_a_max_rounds_exceeded(engine):
    # backward compatibility: existing handlers catch MaxRoundsExceeded
    g = gen.ring(6)
    with pytest.raises(MaxRoundsExceeded):
        engine(g).run(prog_forever, max_rounds=3)


@pytest.mark.parametrize("engine", ENGINES)
def test_watchdog_default_limit_scales_with_n(engine):
    g = gen.ring(16)
    with pytest.raises(RoundLimitExceeded) as exc:
        engine(g).run(prog_forever)
    assert exc.value.limit == default_max_rounds(16)


@pytest.mark.parametrize("engine", ENGINES)
def test_summary_reports_commit_state(engine):
    g = gen.ring(8)
    ids = list(range(8))
    with pytest.raises(RoundLimitExceeded) as exc:
        engine(g, ids=ids).run(prog_half_commit_then_spin, max_rounds=4)
    committed = {v for v, _, _, _, c in exc.value.summaries if c}
    assert committed == {0, 2, 4, 6}


@pytest.mark.parametrize("engine", ENGINES)
def test_summary_caps_listed_vertices(engine):
    g = gen.ring(40)
    with pytest.raises(RoundLimitExceeded) as exc:
        engine(g).run(prog_forever, max_rounds=2)
    msg = str(exc.value)
    assert "40 vertices still active" in msg
    assert "... 28 more" in msg  # 12 shown, the rest summarized
    assert len(exc.value.summaries) == 40  # the data itself is complete


class TestLazySummaries:
    """Large-n behavior of the watchdog error (the n >= 10^6 audit): the
    exception must be cheap to *construct* -- message from the first few
    vertices only, per-vertex summaries built lazily and capped."""

    def test_contexts_none_summaries_degrade_gracefully(self):
        err = RoundLimitExceeded(7, [3, 1, 4], contexts=None)
        assert err.limit == 7 and err.active == (3, 1, 4)
        assert err.summaries == ((3, 7, None, None, None), (1, 7, None, None, None), (4, 7, None, None, None))
        assert "3 vertices still active after 7 rounds" in str(err)
        assert "v3" in str(err)

    def test_message_built_from_prefix_only(self):
        active = list(range(1_000_000))
        err = RoundLimitExceeded(5, active, contexts=None)
        msg = str(err)
        assert "1000000 vertices still active after 5 rounds" in msg
        assert f"... {1_000_000 - 12} more" in msg
        # the message names only the 12-vertex prefix
        assert "v11" in msg and "v12" not in msg

    def test_summaries_lazy_and_capped(self):
        active = list(range(RoundLimitExceeded.SUMMARY_CAP + 5))
        err = RoundLimitExceeded(2, active, contexts=None)
        assert err._summaries is None  # nothing materialized yet
        s = err.summaries
        assert len(s) == RoundLimitExceeded.SUMMARY_CAP
        assert s is err.summaries  # cached after first access

    def test_construction_never_touches_contexts_beyond_prefix(self):
        """The engine hands the live context dict over; building the
        exception must read only the message prefix, so a million-vertex
        failure costs O(shown), not O(n)."""
        reads = []

        class StubCtx:
            round = 9
            halted = {}
            committed = False

            def active_degree(self):
                return 0

        class CountingContexts(dict):
            def __getitem__(self, key):
                reads.append(key)
                return StubCtx()

        active = list(range(50_000))
        err = RoundLimitExceeded(9, active, contexts=CountingContexts())
        assert len(reads) == RoundLimitExceeded._SHOWN
        assert "v0 (round 9, 0 active / 0 halted nbrs)" in str(err)


@pytest.mark.parametrize("engine", ENGINES)
def test_crash_induced_nontermination_names_survivors(engine):
    """A crashed hub leaves its leaf neighbors waiting forever: the
    watchdog names exactly the still-active survivors."""

    def prog_wait_for_hub(ctx):
        # leaves wait for the hub's value; the hub answers in round 2
        if ctx.degree > 1:
            ctx.broadcast("hub-here")
            yield
            ctx.broadcast("answer")
            return "hub"
        while True:
            for msgs in ctx.inbox.values():
                if "answer" in msgs:
                    return "leaf-done"
            yield

    g = gen.star_forest(1, 5)  # one hub (v0), five leaves
    plan = FaultPlan(seed=1, crashes=CrashSpec(at={0: 2}))
    with pytest.raises(RoundLimitExceeded) as exc:
        engine(g).run(prog_wait_for_hub, max_rounds=10, faults=plan)
    err = exc.value
    assert sorted(err.active) == [1, 2, 3, 4, 5]
    # the summaries show each leaf still waiting on its (dead) neighbor
    for v, _rnd, active_deg, halted, _c in err.summaries:
        assert active_deg == 1  # the crashed hub never announced halting
        assert halted == 0

"""The process-wide engine session: `engine_session` / `current_engine`.

Drivers construct their networks internally, so `zoo.execute` cannot pass
an engine down the call stack; instead `SyncNetwork.run` consults the
session stack and delegates to the reference engine when one is active.
These tests pin the stack semantics and the delegation itself.
"""

import pytest

from repro.bench.workloads import make_workload
from repro.graphs import generators as gen
from repro.runtime import ENGINES, current_engine, engine_session
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork


def prog_beat(ctx):
    for r in range(3):
        ctx.broadcast(("beat", ctx.id, r))
        yield
    return (ctx.id, sum(len(m) for m in ctx.inbox.values()))


def _instance(n=80, seed=0):
    g, _a = make_workload("forest_union_a3")(n, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    return g, ids


class TestSessionStack:
    def test_default_engine_is_fast(self):
        assert current_engine() == "fast"

    def test_session_sets_and_restores(self):
        with engine_session("reference"):
            assert current_engine() == "reference"
        assert current_engine() == "fast"

    def test_sessions_nest(self):
        with engine_session("reference"):
            with engine_session("fast"):
                assert current_engine() == "fast"
            assert current_engine() == "reference"

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with engine_session("reference"):
                raise RuntimeError("boom")
        assert current_engine() == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            engine_session("turbo")

    def test_engines_constant(self):
        assert ENGINES == ("fast", "reference", "bulk")

    def test_bulk_session_rejects_programs_without_drivers(self):
        """Under engine_session('bulk'), a generator program with no
        columnar twin must fail loudly, not silently run the slow path."""
        from repro.runtime import BulkUnsupported

        g, ids = _instance(n=40)
        with engine_session("bulk"):
            with pytest.raises(BulkUnsupported, match="columnar driver"):
                SyncNetwork(g, ids=ids, seed=0).run(prog_beat)

    def test_bulk_session_selects_columnar_driver(self):
        """A bulk-capable driver run inside engine_session('bulk') must be
        bit-identical to its fast-engine run."""
        import repro

        g, ids = _instance(n=120)
        fast = repro.run_partition(g, a=3, ids=ids)
        with engine_session("bulk"):
            bulk = repro.run_partition(g, a=3, ids=ids)
        assert bulk.h_index == fast.h_index
        assert bulk.metrics.rounds == fast.metrics.rounds
        assert bulk.metrics.messages_per_round == fast.metrics.messages_per_round


class TestDelegation:
    def test_fast_network_delegates_to_reference_under_session(self):
        """A SyncNetwork run inside engine_session('reference') must be
        bit-identical to running ReferenceSyncNetwork directly."""
        g, ids = _instance()
        direct = ReferenceSyncNetwork(g, ids=ids, seed=0).run(prog_beat)
        with engine_session("reference"):
            via_session = SyncNetwork(g, ids=ids, seed=0).run(prog_beat)
        assert via_session.outputs == direct.outputs
        assert via_session.metrics.rounds == direct.metrics.rounds
        assert (
            via_session.metrics.messages_per_round
            == direct.metrics.messages_per_round
        )

    def test_reference_subclass_is_not_redirected(self):
        """The delegation guard is `type(self) is SyncNetwork`: an explicit
        ReferenceSyncNetwork must not recurse through itself."""
        g, ids = _instance(n=40)
        with engine_session("reference"):
            res = ReferenceSyncNetwork(g, ids=ids, seed=0).run(prog_beat)
        assert res.metrics.worst_case > 0

    def test_full_driver_agrees_across_engines(self):
        import repro

        g, ids = _instance(n=120)
        fast = repro.run_a2_coloring(g, a=3, ids=ids)
        with engine_session("reference"):
            ref = repro.run_a2_coloring(g, a=3, ids=ids)
        assert fast.colors == ref.colors
        assert fast.metrics.worst_case == ref.metrics.worst_case
        assert fast.metrics.vertex_averaged == ref.metrics.vertex_averaged

"""Differential equivalence *under faults*: the seeded adversary must
perturb both engines bit-identically.

Every fault decision is a counter-based draw -- a pure function of
``(plan.seed, round, vertex)`` or ``(plan.seed, round, src, dst, copy)``
-- so replaying the same :class:`~repro.faults.FaultPlan` through the
fast engine and the reference engine must produce identical
:class:`~repro.runtime.network.RunResult` surfaces (outputs, per-vertex
rounds, active/message traces, crashed sets) *and* identical typed event
streams, fault events included.  This is the fault layer's analogue of
``test_equivalence.py``.
"""

import pytest

from repro.bench.workloads import WORKLOADS
from repro.faults import CrashSpec, FaultPlan, MessageFaults
from repro.graphs import generators as gen
from repro.obs import EventBus, MemorySink
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork

FAMILIES = ("forest_union_a3", "planar_grid", "caterpillar", "gnp_sparse", "ring")
SEEDS = (0, 1, 2)
N = 100


# Bounded-round programs: they terminate even when neighbors crash or
# messages are dropped, so faulted runs still complete and the full
# RunResult surface is comparable.

def prog_bounded_chatter(ctx):
    lifetime = 2 + ctx.rng.randrange(5)
    digest = 0
    for r in range(lifetime):
        ctx.broadcast(("beat", ctx.id, r))
        nbrs = ctx.active_neighbors()
        if nbrs:
            ctx.send(nbrs[r % len(nbrs)], ("poke", r))
        yield
        for u, msgs in sorted(ctx.inbox.items()):
            digest += len(msgs) + u
    return (ctx.id, digest)


def prog_bounded_commit(ctx):
    commit_at = 1 + ctx.rng.randrange(3)
    for r in range(commit_at):
        ctx.broadcast(("pre", r))
        yield
    ctx.commit(("out", ctx.id, sorted(ctx.inbox)))
    for _ in range(ctx.rng.randrange(3)):
        ctx.broadcast("linger")
        yield
    return None


PLANS = {
    "crash_at": FaultPlan(seed=5, crashes=CrashSpec(at={1: 1, 4: 2, 9: 3})),
    "crash_hazard": FaultPlan(seed=6, crashes=CrashSpec(hazard=0.03)),
    "msg_drop": FaultPlan(seed=7, messages=MessageFaults(drop=0.08)),
    "msg_dup": FaultPlan(seed=8, messages=MessageFaults(duplicate=0.1)),
    "msg_delay": FaultPlan(seed=9, messages=MessageFaults(delay=0.1, max_delay=2)),
    "everything": FaultPlan(
        seed=10,
        crashes=CrashSpec(at={2: 2}, hazard=0.01),
        messages=MessageFaults(drop=0.04, duplicate=0.04, delay=0.04),
    ),
}


def _run_both(family, seed, program, plan):
    wl = WORKLOADS[family]
    g, _a = wl(N, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    results, streams = [], []
    for cls in (SyncNetwork, ReferenceSyncNetwork):
        sink = MemorySink()
        res = cls(g, ids=ids, seed=seed).run(
            program, bus=EventBus(sink), faults=plan
        )
        results.append(res)
        streams.append(sink.events)
    return results, streams


def _assert_identical(fast, ref, ev_fast, ev_ref):
    assert fast.outputs == ref.outputs
    assert fast.metrics.rounds == ref.metrics.rounds
    assert fast.metrics.active_trace == ref.metrics.active_trace
    assert fast.metrics.messages_per_round == ref.metrics.messages_per_round
    assert fast.output_rounds == ref.output_rounds
    assert fast.crashed == ref.crashed
    assert ev_fast == ev_ref
    # the paper's Equation (1) accounting survives fault injection
    assert fast.metrics.check_active_trace()
    assert ref.metrics.check_active_trace()


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("family", FAMILIES)
def test_engines_agree_under_faults(plan_name, family):
    (fast, ref), (ev_f, ev_r) = _run_both(
        family, 0, prog_bounded_chatter, PLANS[plan_name]
    )
    _assert_identical(fast, ref, ev_f, ev_r)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", ("forest_union_a3", "gnp_sparse"))
def test_engines_agree_under_combined_faults_across_seeds(family, seed):
    (fast, ref), (ev_f, ev_r) = _run_both(
        family, seed, prog_bounded_chatter, PLANS["everything"]
    )
    _assert_identical(fast, ref, ev_f, ev_r)


@pytest.mark.parametrize("plan_name", ("crash_at", "msg_delay", "everything"))
def test_commit_semantics_agree_under_faults(plan_name):
    (fast, ref), (ev_f, ev_r) = _run_both(
        "forest_union_a3", 1, prog_bounded_commit, PLANS[plan_name]
    )
    _assert_identical(fast, ref, ev_f, ev_r)


def test_fault_events_present_and_identical():
    (fast, ref), (ev_f, ev_r) = _run_both(
        "gnp_sparse", 0, prog_bounded_chatter, PLANS["everything"]
    )
    kinds = {e.kind for e in ev_f}
    assert ev_f == ev_r
    # the adversary actually did something, and narrated it
    assert kinds & {"fault_crash", "fault_drop", "fault_dup", "fault_delay"}


def test_crashed_vertices_recorded_identically():
    plan = PLANS["crash_at"]
    (fast, ref), _ = _run_both("ring", 0, prog_bounded_chatter, plan)
    assert fast.crashed == ref.crashed == (1, 4, 9)
    # a crashed vertex produced no output and stopped counting rounds
    for v in fast.crashed:
        assert v not in fast.outputs

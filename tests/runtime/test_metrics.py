"""Tests for the round-accounting structures."""

import pytest

from repro.runtime.metrics import RoundMetrics, merge_metrics


def test_empty_metrics():
    m = RoundMetrics(rounds=())
    assert m.n == 0
    assert m.vertex_averaged == 0.0
    assert m.worst_case == 0
    assert m.round_sum == 0
    assert m.quantile(0.5) == 0


def test_basic_quantities():
    m = RoundMetrics(rounds=(1, 2, 3, 6))
    assert m.round_sum == 12
    assert m.vertex_averaged == 3.0
    assert m.worst_case == 6


def test_quantile():
    m = RoundMetrics(rounds=(1, 1, 1, 1, 1, 1, 1, 1, 1, 100))
    assert m.quantile(0.5) == 1
    assert m.quantile(0.99) == 100
    # the median is far below the average on skewed executions
    assert m.quantile(0.5) < m.vertex_averaged


def test_terminated_by():
    m = RoundMetrics(rounds=(1, 2, 2, 5))
    assert m.terminated_by(0) == 0
    assert m.terminated_by(1) == 1
    assert m.terminated_by(2) == 3
    assert m.terminated_by(5) == 4


def test_check_active_trace_valid():
    m = RoundMetrics(rounds=(1, 2, 3), active_trace=(3, 2, 1))
    assert m.check_active_trace()


def test_check_active_trace_detects_mismatch():
    m = RoundMetrics(rounds=(1, 2, 3), active_trace=(3, 3, 1))
    assert not m.check_active_trace()


def test_equation_one_roundsum_equals_trace_sum():
    """Equation (1) of the paper: RoundSum(V) = sum_i n_i."""
    rounds = (1, 1, 4, 2, 7)
    trace = tuple(sum(1 for r in rounds if r >= i) for i in range(1, 8))
    m = RoundMetrics(rounds=rounds, active_trace=trace)
    assert m.check_active_trace()
    assert sum(trace) == m.round_sum


def test_messages():
    m = RoundMetrics(rounds=(1,), messages_per_round=(3, 4))
    assert m.total_messages == 7


def test_summary_string():
    m = RoundMetrics(rounds=(1, 3))
    s = m.summary()
    assert "avg=2.000" in s and "worst=3" in s


def test_merge_metrics():
    m1 = RoundMetrics(rounds=(1, 2), active_trace=(2, 1), messages_per_round=(4,))
    m2 = RoundMetrics(rounds=(3,), active_trace=(1, 1, 1), messages_per_round=(1, 1, 1))
    merged = merge_metrics([m1, m2])
    assert merged.rounds == (1, 2, 3)
    assert merged.active_trace == (3, 2, 1)
    assert merged.messages_per_round == (5, 1, 1)
    assert merged.check_active_trace()


def test_merge_empty():
    m = merge_metrics([])
    assert m.n == 0


def test_frozen():
    m = RoundMetrics(rounds=(1,))
    with pytest.raises(AttributeError):
        m.rounds = (2,)

"""The bulk engine's shared plumbing: CSR row-gather, RunResult
assembly, the columnar bench kernel, and the refusal paths
(:class:`BulkUnsupported` for generic programs and fault sessions).

The algorithm-level bit-identity pins live in ``test_equivalence.py``
(three-way matrix); this file covers the helpers those drivers share.
"""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.runtime import BulkUnsupported, bulk_broadcast_kernel, engine_session
from repro.runtime.bulk import (
    finalize_run,
    gather_rows,
    id_space,
    require_no_faults,
    resolve_ids,
)
from repro.runtime.network import RoundLimitExceeded, SyncNetwork


class TestGatherRows:
    def test_matches_per_vertex_slices(self):
        g = gen.union_of_forests(60, 3, seed=0)
        offsets, indices = g.csr()
        verts = np.array([0, 5, 5, 17, 59], dtype=np.int64)
        expect = np.concatenate(
            [indices[offsets[v] : offsets[v + 1]] for v in verts]
        )
        got = gather_rows(offsets, indices, verts)
        assert np.array_equal(got, expect)

    def test_empty_vertex_set(self):
        g = gen.ring(5)
        offsets, indices = g.csr()
        out = gather_rows(offsets, indices, np.zeros(0, dtype=np.int64))
        assert out.size == 0

    def test_zero_degree_vertices_contribute_nothing(self):
        g = gen.star_forest(1, 3)  # plus isolated-free; add empty graph too
        offsets, indices = g.csr()
        leaves = np.array([1, 2, 3], dtype=np.int64)
        assert gather_rows(offsets, indices, leaves).tolist() == [0, 0, 0]


class TestResolveIds:
    def test_identity_default(self):
        g = gen.ring(4)
        assert resolve_ids(g, None).tolist() == [0, 1, 2, 3]

    def test_validation_matches_sync_network(self):
        g = gen.ring(4)
        with pytest.raises(ValueError, match="length"):
            resolve_ids(g, [1, 2, 3])
        with pytest.raises(ValueError, match="distinct"):
            resolve_ids(g, [1, 1, 2, 3])

    def test_id_space(self):
        assert id_space(np.array([3, 9, 0], dtype=np.int64)) == 10
        assert id_space(np.zeros(0, dtype=np.int64)) == 1


class TestFinalizeRun:
    def test_derives_active_trace_from_term(self):
        term = np.array([1, 2, 2, 3], dtype=np.int64)
        res = finalize_run(
            {v: None for v in range(4)},
            term,
            sent=[4, 2, 1],
            msgs=[5, 4, 2],
            receivers=[3, 2, 0],
        )
        assert res.metrics.rounds == (1, 2, 2, 3)
        assert res.metrics.active_trace == (4, 3, 1)
        assert res.metrics.messages_per_round == (5, 4, 2)
        assert res.output_rounds == (1, 2, 2, 3)
        assert res.metrics.check_active_trace()

    def test_emits_aggregate_events_on_live_bus(self):
        from repro.obs.events import EventBus
        from repro.obs.sinks import MemorySink

        mem = MemorySink()
        term = np.array([2, 1], dtype=np.int64)
        finalize_run(
            {0: None, 1: None},
            term,
            sent=[3, 0],
            msgs=[4, 1],
            receivers=[1, 0],
            bus=EventBus(mem),
        )
        kinds = [e.kind for e in mem.events]
        # round_sends only for rounds that actually routed something
        assert kinds == ["round_start", "round_sends", "round_end", "round_start", "round_end"]
        assert mem.events[1].msgs == 3
        assert mem.events[2].halts == 1

    def test_empty_graph(self):
        res = finalize_run({}, np.zeros(0, dtype=np.int64), [], [], [])
        assert res.metrics.rounds == ()
        assert res.metrics.active_trace == ()


class TestBroadcastKernel:
    @pytest.mark.parametrize("n,rounds", [(60, 3), (200, 10)])
    def test_bit_identical_to_generator_kernel(self, n, rounds):
        from repro.bench.baseline import broadcast_program

        g = gen.union_of_forests(n, 3, seed=0)
        ref = SyncNetwork(g).run(broadcast_program(rounds))
        bulk = bulk_broadcast_kernel(g, rounds=rounds)
        assert bulk.outputs == ref.outputs
        assert bulk.metrics.rounds == ref.metrics.rounds
        assert bulk.metrics.active_trace == ref.metrics.active_trace
        assert (
            bulk.metrics.messages_per_round == ref.metrics.messages_per_round
        )
        assert bulk.output_rounds == ref.output_rounds


class TestRefusals:
    def test_require_no_faults_is_noop_without_session(self):
        require_no_faults("anything")

    def test_require_no_faults_raises_under_session(self):
        from repro import faults as flt
        from repro.faults import CrashSpec, FaultPlan

        plan = FaultPlan(seed=3, crashes=CrashSpec(hazard=0.5))
        with flt.session(plan.injector()):
            with pytest.raises(BulkUnsupported, match="fault injection"):
                require_no_faults("bulk_partition")

    def test_generic_program_raises_under_bulk_session(self):
        g = gen.ring(6)

        def program(ctx):
            yield
            return None

        with engine_session("bulk"):
            with pytest.raises(BulkUnsupported, match="columnar driver"):
                SyncNetwork(g).run(program)


class TestLargeN:
    """The million-vertex acceptance path, scaled to test budget: the
    columnar Partition driver completes quickly at n = 10^5 and its
    watchdog failure is cheap (lazy summaries, no contexts)."""

    def test_partition_at_one_hundred_thousand(self):
        import repro

        g = gen.union_of_forests(100_000, 3, seed=0)
        with engine_session("bulk"):
            res = repro.run_partition(g, a=3)
        m = res.metrics
        assert len(res.h_index) == 100_000
        assert m.check_active_trace()
        # Theorem 6.3's shape: O(1) vertex-averaged at any scale
        assert m.vertex_averaged < 4.0
        assert m.worst_case <= 10

    def test_bulk_watchdog_is_lazy_at_large_n(self):
        from repro.core.bulk import bulk_partition

        # a = 1 undersizes the degree bound for an arboricity-3 graph, so
        # the high-degree core never drains and the budget runs out with
        # tens of thousands of vertices still active
        g = gen.union_of_forests(50_000, 3, seed=0)
        with pytest.raises(RoundLimitExceeded) as exc:
            bulk_partition(g, 1, max_rounds=1)
        err = exc.value
        assert err.limit == 1
        assert err._summaries is None  # nothing materialized by raising
        assert len(err.active) > 1_000
        # message names only a 12-vertex prefix of the stragglers
        assert "... " in str(err) and " more" in str(err)
        # summaries degrade to (v, limit, None, None, None) -- no contexts
        v, limit, ad, h, c = err.summaries[0]
        assert limit == 1 and ad is None and h is None and c is None


class TestChunkedKernels:
    """BULK_CHUNK-sized tiling must be invisible: forcing a tiny chunk
    size reproduces the untiled results bit-for-bit."""

    def test_partition_chunked_matches(self, monkeypatch):
        import repro
        import repro.core.bulk as cb

        g = gen.union_of_forests(600, 3, seed=2)
        with engine_session("bulk"):
            ref = repro.run_partition(g, a=3)
        monkeypatch.setattr(cb, "BULK_CHUNK", 7)
        with engine_session("bulk"):
            got = repro.run_partition(g, a=3)
        assert got.h_index == ref.h_index
        assert got.metrics == ref.metrics

    def test_broadcast_kernel_chunked_matches(self, monkeypatch):
        import repro.runtime.bulk as rb

        g = gen.gnp(80, 0.1, seed=1)
        ref = bulk_broadcast_kernel(g, rounds=4)
        monkeypatch.setattr(rb, "BULK_CHUNK", 3)
        got = bulk_broadcast_kernel(g, rounds=4)
        assert got.metrics == ref.metrics

"""Pin of the fault-delay semantics on the fast engine.

The async-scheduler refactor generalises :class:`repro.faults.FaultPlan`
delay draws into a delivery-time model.  These tests freeze the *current*
behavior first -- delivery offsets, ``fault_delay`` obs events, and the
traffic accounting of held copies -- so the generalisation is drift-gated:
any change to when a delayed copy leaves its sender, when it arrives, or
how it is counted shows up here before it can silently shift every
downstream metric.

Pinned semantics (the contract):

* a copy delayed by ``d`` extra rounds, sent in round ``r``, is delivered
  at the start of round ``r + 1 + d`` (normal delivery is ``r + 1``);
* the delaying draw is a pure function of ``(plan.seed, round, src, dst,
  copy index)`` -- replaying the plan replays the schedule bit-identically;
* a held copy counts as traffic of its *send* round (it left the sender),
  via ``FaultInjector.take_delayed_count``;
* every delay emits one ``fault_delay`` event carrying the extra-round
  count, in routing order.
"""

from repro.faults import FaultPlan, MessageFaults
from repro.graphs import generators as gen
from repro.obs import EventBus, MemorySink
from repro.runtime.network import SyncNetwork

#: every copy delayed by exactly one extra round: the deterministic plan
DELAY_ALL_BY_1 = FaultPlan(seed=0, messages=MessageFaults(delay=1.0, max_delay=1))

#: seeded probabilistic plan used for the replay/schedule pins
DELAY_SOME = FaultPlan(seed=9, messages=MessageFaults(delay=0.3, max_delay=3))


def _pipe_prog(ctx):
    """v0 sends one token per round for three rounds; v1 logs its inbox
    for six rounds.  The receiver's log *is* the delivery schedule."""
    if ctx.v == 0:
        for r in (1, 2, 3):
            ctx.send(1, ("tok", r))
            yield
        return "sender-done"
    log = []
    for _ in range(5):
        log.append(
            (ctx.round, tuple(sorted((u, tuple(ms)) for u, ms in ctx.inbox.items())))
        )
        yield
    log.append(
        (ctx.round, tuple(sorted((u, tuple(ms)) for u, ms in ctx.inbox.items())))
    )
    return tuple(log)


def _chatter_prog(ctx):
    """Oblivious sender: broadcasts in rounds 1..3 regardless of inbox
    (so the traffic pattern cannot react to the faults), digests whatever
    arrives, and stays quiet one round before terminating."""
    digest = []
    for r in (1, 2, 3):
        ctx.broadcast(("beat", ctx.v, r))
        yield
        digest.append(
            (ctx.round, tuple(sorted((u, len(ms)) for u, ms in ctx.inbox.items())))
        )
    yield
    return (ctx.v, tuple(digest))


def _run(graph, program, plan, seed=0):
    sink = MemorySink()
    res = SyncNetwork(graph, seed=seed).run(
        program, bus=EventBus(sink), faults=plan
    )
    return res, sink.events


class TestDeliveryOffsets:
    def test_delay_1_shifts_delivery_to_r_plus_2(self):
        res, events = _run(gen.path(2), _pipe_prog, DELAY_ALL_BY_1)
        # token sent in round r arrives at the start of round r + 2
        assert res.outputs[1] == (
            (1, ()),
            (2, ()),
            (3, ((0, (("tok", 1),)),)),
            (4, ((0, (("tok", 2),)),)),
            (5, ((0, (("tok", 3),)),)),
            (6, ()),
        )
        assert res.outputs[0] == "sender-done"
        assert res.metrics.rounds == (4, 6)

    def test_unfaulted_delivery_is_r_plus_1(self):
        # the baseline the offset is measured against
        res, _ = _run(gen.path(2), _pipe_prog, FaultPlan())
        assert res.outputs[1] == (
            (1, ()),
            (2, ((0, (("tok", 1),)),)),
            (3, ((0, (("tok", 2),)),)),
            (4, ((0, (("tok", 3),)),)),
            (5, ()),
            (6, ()),
        )


class TestDelayEvents:
    def test_every_copy_emits_one_fault_delay_with_offset(self):
        _, events = _run(gen.path(2), _pipe_prog, DELAY_ALL_BY_1)
        delays = [e for e in events if e.kind == "fault_delay"]
        assert [(e.round, e.src, e.dst, e.delay) for e in delays] == [
            (1, 0, 1, 1),
            (2, 0, 1, 1),
            (3, 0, 1, 1),
        ]

    def test_send_intent_precedes_the_fault_narration(self):
        _, events = _run(gen.path(2), _pipe_prog, DELAY_ALL_BY_1)
        kinds = [e.kind for e in events if e.kind in ("send", "fault_delay")]
        assert kinds == ["send", "fault_delay"] * 3


class TestTrafficAccounting:
    def test_held_copies_count_in_their_send_round(self):
        res, _ = _run(gen.path(2), _pipe_prog, DELAY_ALL_BY_1)
        # rounds 1-3: one held copy each; round 4: v0's halt notice;
        # round 5: silence; round 6: v1's halt notice
        assert res.metrics.messages_per_round == (1, 1, 1, 1, 0, 1)

    def test_oblivious_traffic_matches_the_unfaulted_run(self):
        """Delay never creates or destroys copies: an oblivious program's
        per-round totals are identical with and without the delay plan,
        because a held copy is tallied when it leaves its sender."""
        g = gen.ring(8)
        clean, _ = _run(g, _chatter_prog, FaultPlan())
        delayed, _ = _run(g, _chatter_prog, DELAY_ALL_BY_1)
        assert (
            delayed.metrics.messages_per_round
            == clean.metrics.messages_per_round
        )
        assert delayed.metrics.rounds == clean.metrics.rounds
        assert delayed.metrics.active_trace == clean.metrics.active_trace

    def test_delay_1_shifts_every_observation_by_one_round(self):
        g = gen.ring(8)
        clean, _ = _run(g, _chatter_prog, FaultPlan())
        delayed, _ = _run(g, _chatter_prog, DELAY_ALL_BY_1)
        for v in range(g.n):
            _, clean_digest = clean.outputs[v]
            _, delayed_digest = delayed.outputs[v]
            # a beat observed in round r clean is observed in round r + 1
            # delayed; the last beat falls off the digest horizon (the
            # digest covers rounds 2..4)
            shifted = [
                (r + 1, obs) for r, obs in clean_digest if r + 1 <= 4
            ]
            assert [(r, o) for r, o in delayed_digest if o] == [
                (r, o) for r, o in shifted if o
            ]


class TestSeededSchedule:
    def test_probabilistic_plan_replays_bit_identically(self):
        g = gen.ring(12)
        first, ev_first = _run(g, _chatter_prog, DELAY_SOME, seed=3)
        again, ev_again = _run(g, _chatter_prog, DELAY_SOME, seed=3)
        assert first.outputs == again.outputs
        assert first.metrics == again.metrics
        assert ev_first == ev_again

    def test_seeded_schedule_concrete_pin(self):
        """The exact delay schedule of DELAY_SOME on ring(12): a change in
        the draw function, the copy-index counter, or the offset range
        moves these literals."""
        _, events = _run(gen.ring(12), _chatter_prog, DELAY_SOME, seed=3)
        delays = sorted(
            (e.round, e.src, e.dst, e.delay)
            for e in events
            if e.kind == "fault_delay"
        )
        assert delays == PINNED_SCHEDULE

    def test_seed_changes_the_schedule(self):
        g = gen.ring(12)
        _, ev_a = _run(g, _chatter_prog, DELAY_SOME, seed=3)
        other = FaultPlan(seed=10, messages=DELAY_SOME.messages)
        _, ev_b = _run(g, _chatter_prog, other, seed=3)
        sched_a = [e for e in ev_a if e.kind == "fault_delay"]
        sched_b = [e for e in ev_b if e.kind == "fault_delay"]
        assert sched_a != sched_b


#: literal pin of DELAY_SOME's schedule (filled from the pre-refactor
#: engine; regenerate deliberately, never to paper over a drift)
PINNED_SCHEDULE = [
    (1, 0, 1, 1),
    (1, 2, 1, 1),
    (1, 5, 6, 3),
    (1, 8, 9, 3),
    (1, 11, 0, 1),
    (2, 0, 11, 2),
    (2, 1, 2, 2),
    (2, 2, 1, 2),
    (2, 5, 4, 3),
    (2, 5, 6, 3),
    (2, 6, 5, 2),
    (2, 9, 8, 3),
    (2, 10, 9, 1),
    (2, 10, 11, 3),
    (3, 1, 0, 2),
    (3, 3, 4, 1),
    (3, 6, 7, 1),
    (3, 9, 8, 3),
    (3, 9, 10, 1),
    (3, 10, 11, 1),
    (3, 11, 0, 2),
    (3, 11, 10, 3),
]

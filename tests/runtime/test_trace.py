"""Tests for the execution tracer."""

from repro.core.common import LocalView
from repro.core.partition import join_h_set
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.runtime.network import SyncNetwork
from repro.runtime.trace import Trace, traced


def test_trace_records_terminations_per_round():
    g = gen.path(4)

    def program(ctx):
        for _ in range(ctx.v):
            yield
        return None

    trace = Trace()
    res = SyncNetwork(g).run(traced(program, trace))
    assert trace.terminations_per_round() == [1, 1, 1, 1]
    assert trace.termination_rounds() == {0: 1, 1: 2, 2: 3, 3: 4}
    # the trace agrees with the metrics
    assert trace.termination_rounds() == {
        v: r for v, r in enumerate(res.metrics.rounds)
    }


def test_trace_counts_messages():
    g = gen.ring(4)

    def program(ctx):
        ctx.broadcast("x")
        yield
        return None

    trace = Trace()
    SyncNetwork(g).run(traced(program, trace))
    assert trace.messages_per_round()[0] == 8


def test_trace_records_commits():
    g = Graph(2, [(0, 1)])

    def program(ctx):
        yield
        ctx.commit("v")
        yield
        return None

    trace = Trace()
    SyncNetwork(g).run(traced(program, trace))
    assert sorted(trace.records[1].committed) == [0, 1]


def test_trace_partition_matches_decay():
    """Per-round terminations of Partition mirror the active-trace decay
    the averaged analysis rests on."""
    g = gen.union_of_forests(300, 3, seed=1)
    trace = Trace()
    from repro.core.common import degree_bound

    A = degree_bound(3, 1.0)

    def program(ctx):
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        return h

    res = SyncNetwork(g).run(traced(program, trace))
    per_round = trace.terminations_per_round()
    assert sum(per_round) == g.n
    # reconstruct n_i from the trace and compare with the engine's record
    actives = []
    alive = g.n
    for t in per_round:
        actives.append(alive)
        alive -= t
    assert tuple(actives) == res.metrics.active_trace


def test_narrative_renders():
    g = gen.path(3)

    def program(ctx):
        yield
        return None

    trace = Trace()
    SyncNetwork(g).run(traced(program, trace))
    text = trace.narrative()
    assert "round" in text and "terminated" in text

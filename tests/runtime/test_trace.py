"""Tests for the execution tracer."""

import warnings

import pytest

from repro.core.common import LocalView
from repro.core.partition import join_h_set
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.obs.events import EventBus
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork
from repro.runtime.trace import Trace, TraceRecorder, traced


def test_trace_records_terminations_per_round():
    g = gen.path(4)

    def program(ctx):
        for _ in range(ctx.v):
            yield
        return None

    trace = Trace()
    res = SyncNetwork(g).run(traced(program, trace))
    assert trace.terminations_per_round() == [1, 1, 1, 1]
    assert trace.termination_rounds() == {0: 1, 1: 2, 2: 3, 3: 4}
    # the trace agrees with the metrics
    assert trace.termination_rounds() == {
        v: r for v, r in enumerate(res.metrics.rounds)
    }


def test_trace_counts_messages():
    g = gen.ring(4)

    def program(ctx):
        ctx.broadcast("x")
        yield
        return None

    trace = Trace()
    SyncNetwork(g).run(traced(program, trace))
    assert trace.messages_per_round()[0] == 8


def test_trace_records_commits():
    g = Graph(2, [(0, 1)])

    def program(ctx):
        yield
        ctx.commit("v")
        yield
        return None

    trace = Trace()
    SyncNetwork(g).run(traced(program, trace))
    assert sorted(trace.records[1].committed) == [0, 1]


def test_trace_partition_matches_decay():
    """Per-round terminations of Partition mirror the active-trace decay
    the averaged analysis rests on."""
    g = gen.union_of_forests(300, 3, seed=1)
    trace = Trace()
    from repro.core.common import degree_bound

    A = degree_bound(3, 1.0)

    def program(ctx):
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        return h

    res = SyncNetwork(g).run(traced(program, trace))
    per_round = trace.terminations_per_round()
    assert sum(per_round) == g.n
    # reconstruct n_i from the trace and compare with the engine's record
    actives = []
    alive = g.n
    for t in per_round:
        actives.append(alive)
        alive -= t
    assert tuple(actives) == res.metrics.active_trace


def test_record_out_of_order_access_stays_dense():
    """record() fills any missing earlier rounds: the sequence can never
    gap or duplicate however rounds are first touched."""
    trace = Trace()
    trace.record(3).terminated.append(7)
    trace.record(1).messages += 2
    trace.record(5)
    trace.record(3).terminated.append(8)
    assert [rec.round for rec in trace.records] == [1, 2, 3, 4, 5]
    assert trace.records[2].terminated == [7, 8]
    assert trace.messages_per_round() == [2, 0, 0, 0, 0]
    assert len(trace.records) == 5  # re-access created nothing new


def test_record_rejects_non_positive_rounds():
    """The old unchecked indexing silently aliased records[-1] for round
    0; it is now an error."""
    trace = Trace()
    trace.record(2)
    with pytest.raises(ValueError, match="1-based"):
        trace.record(0)
    with pytest.raises(ValueError, match="1-based"):
        trace.record(-1)
    assert [rec.round for rec in trace.records] == [1, 2]


def test_trace_recorder_matches_traced_wrapper():
    """The sink path produces the exact trace the deprecated wrapper
    builds, under both engines."""
    g = gen.union_of_forests(60, 3, seed=4)

    def program(ctx):
        lifetime = 1 + ctx.v % 4
        for r in range(lifetime):
            ctx.broadcast(("r", r))
            yield
        if ctx.v % 2:
            ctx.commit(ctx.v)
            yield
        return None

    for cls in (SyncNetwork, ReferenceSyncNetwork):
        rec = TraceRecorder()
        cls(g).run(program, bus=EventBus(rec))
        legacy = Trace()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cls(g).run(traced(program, legacy))
        assert rec.trace.records == legacy.records


def test_traced_emits_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="TraceRecorder"):
        traced(lambda ctx: iter(()), Trace())


def test_narrative_renders():
    g = gen.path(3)

    def program(ctx):
        yield
        return None

    trace = Trace()
    SyncNetwork(g).run(traced(program, trace))
    text = trace.narrative()
    assert "round" in text and "terminated" in text

"""Tests for the synchronous round engine: the model semantics every
complexity measurement rests on."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.runtime.network import MaxRoundsExceeded, SyncNetwork


def test_immediate_termination_is_one_round():
    g = Graph(3, [(0, 1), (1, 2)])

    def program(ctx):
        return ctx.id
        yield  # pragma: no cover

    res = SyncNetwork(g).run(program)
    assert res.metrics.rounds == (1, 1, 1)
    assert res.outputs == {0: 0, 1: 1, 2: 2}


def test_rounds_count_yields_plus_one():
    g = Graph(2, [(0, 1)])

    def program(ctx):
        yield
        yield
        return "done"

    res = SyncNetwork(g).run(program)
    assert res.metrics.rounds == (3, 3)


def test_message_delivered_next_round():
    g = Graph(2, [(0, 1)])
    log = {}

    def program(ctx):
        ctx.send(1 - ctx.v, f"hello from {ctx.v}")
        assert ctx.inbox == {}  # nothing before the first round ends
        yield
        log[ctx.v] = dict(ctx.inbox)
        return None

    SyncNetwork(g).run(program)
    assert log[0] == {1: ["hello from 1"]}
    assert log[1] == {0: ["hello from 0"]}


def test_multiple_sends_bundle_in_order():
    g = Graph(2, [(0, 1)])
    seen = {}

    def program(ctx):
        ctx.send(1 - ctx.v, "a")
        ctx.send(1 - ctx.v, "b")
        yield
        seen[ctx.v] = ctx.inbox[1 - ctx.v]
        return None

    SyncNetwork(g).run(program)
    assert seen[0] == ["a", "b"]


def test_broadcast_reaches_all_active_neighbors():
    g = gen.star(4)
    got = {}

    def program(ctx):
        if ctx.v == 0:
            ctx.broadcast("ping")
        yield
        got[ctx.v] = ctx.inbox.get(0)
        return None

    SyncNetwork(g).run(program)
    assert got[1] == got[2] == got[3] == ["ping"]
    assert got[0] is None


def test_termination_notice_carries_output():
    g = Graph(2, [(0, 1)])
    observed = {}

    def program(ctx):
        if ctx.v == 0:
            return "final-0"
        yield
        observed["halted"] = dict(ctx.halted)
        observed["newly"] = set(ctx.newly_halted)
        return "final-1"

    SyncNetwork(g).run(program)
    assert observed["halted"] == {0: "final-0"}
    assert observed["newly"] == {0}


def test_newly_halted_cleared_after_one_round():
    g = Graph(2, [(0, 1)])
    snaps = []

    def program(ctx):
        if ctx.v == 0:
            return None
        yield
        snaps.append(set(ctx.newly_halted))
        yield
        snaps.append(set(ctx.newly_halted))
        return None

    SyncNetwork(g).run(program)
    assert snaps == [{0}, set()]


def test_sends_to_halted_neighbors_dropped():
    g = Graph(2, [(0, 1)])

    def program(ctx):
        if ctx.v == 0:
            return None
        yield
        ctx.send(0, "too late")  # 0 already terminated
        yield
        return None

    res = SyncNetwork(g).run(program)
    # no crash; the message never counts as delivered to a live vertex
    assert res.outputs[1] is None


def test_active_degree_tracks_halting():
    g = gen.star(4)
    seen = []

    def program(ctx):
        if ctx.v != 0:
            return None
        seen.append(ctx.active_degree())
        yield
        seen.append(ctx.active_degree())
        return None

    SyncNetwork(g).run(program)
    assert seen == [3, 0]


def test_message_sent_in_final_round_is_delivered():
    g = Graph(2, [(0, 1)])
    got = {}

    def program(ctx):
        if ctx.v == 0:
            ctx.broadcast("parting gift")
            return None
        yield
        got["msg"] = ctx.inbox.get(0)
        return None

    SyncNetwork(g).run(program)
    assert got["msg"] == ["parting gift"]


def test_active_trace_and_roundsum_consistency():
    g = gen.path(6)

    def program(ctx):
        # vertex v terminates in round v + 1
        for _ in range(ctx.v):
            yield
        return None

    res = SyncNetwork(g).run(program)
    m = res.metrics
    assert m.rounds == (1, 2, 3, 4, 5, 6)
    assert m.active_trace == (6, 5, 4, 3, 2, 1)
    assert m.check_active_trace()
    assert m.round_sum == 21
    assert m.vertex_averaged == 3.5
    assert m.worst_case == 6


def test_distinct_ids_required():
    g = Graph(2, [(0, 1)])
    with pytest.raises(ValueError, match="distinct"):
        SyncNetwork(g, ids=[1, 1])


def test_id_length_checked():
    g = Graph(2, [(0, 1)])
    with pytest.raises(ValueError, match="length"):
        SyncNetwork(g, ids=[1])


def test_custom_ids_visible_to_programs():
    g = Graph(2, [(0, 1)])
    seen = {}

    def program(ctx):
        seen[ctx.v] = (ctx.id, dict(ctx.neighbor_ids))
        return None
        yield  # pragma: no cover

    SyncNetwork(g, ids=[10, 20]).run(program)
    assert seen[0] == (10, {1: 20})
    assert seen[1] == (20, {0: 10})


def test_config_defaults():
    g = Graph(3, [(0, 1)])
    net = SyncNetwork(g, ids=[5, 9, 2], config={"a": 7})
    assert net.config["n"] == 3
    assert net.config["id_space"] == 10
    assert net.config["a"] == 7


def test_max_rounds_guard():
    g = Graph(1)

    def forever(ctx):
        while True:
            yield

    with pytest.raises(MaxRoundsExceeded):
        SyncNetwork(g).run(forever, max_rounds=10)


def test_non_generator_program_rejected():
    g = Graph(1)
    with pytest.raises(TypeError):
        SyncNetwork(g).run(lambda ctx: 42)


def test_empty_graph_run():
    res = SyncNetwork(Graph(0)).run(lambda ctx: iter(()))
    assert res.outputs == {}
    assert res.metrics.vertex_averaged == 0.0


def test_determinism_same_seed():
    g = gen.gnp(30, 0.1, seed=1)

    def program(ctx):
        vals = []
        for _ in range(3):
            ctx.broadcast(ctx.rng.random())
            yield
            vals.append(tuple(sorted((u, tuple(m)) for u, m in ctx.inbox.items())))
        return (ctx.rng.random(), tuple(vals))

    r1 = SyncNetwork(g, seed=42).run(program)
    r2 = SyncNetwork(g, seed=42).run(program)
    r3 = SyncNetwork(g, seed=43).run(program)
    assert r1.outputs == r2.outputs
    assert r1.outputs != r3.outputs


def test_per_vertex_rng_independent():
    g = Graph(2)

    def program(ctx):
        return ctx.rng.random()
        yield  # pragma: no cover

    res = SyncNetwork(g).run(program)
    assert res.outputs[0] != res.outputs[1]


def test_message_counts():
    g = gen.ring(4)

    def program(ctx):
        ctx.broadcast("x")
        yield
        return None

    res = SyncNetwork(g).run(program)
    # round 1: 4 vertices x 2 neighbors = 8; round 2: 4 halt notices
    assert res.metrics.messages_per_round[0] == 8
    assert res.metrics.total_messages >= 8


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_messages_to_same_round_terminators_are_dropped(engine):
    """A message routed to a vertex that terminates in the same round can
    never be delivered; it must be dropped at routing time, not linger
    undelivered while inflating msg_count (regression: the seed engine
    accumulated such messages in ``pending`` forever and counted them)."""
    from repro.runtime.reference import ReferenceSyncNetwork

    cls = SyncNetwork if engine == "fast" else ReferenceSyncNetwork
    g = Graph(2, [(0, 1)])

    def program(ctx):
        if ctx.v == 0:
            return "gone"  # terminates during round 1
        ctx.send(0, "too late")  # sent in round 1: 0's halt not yet known
        yield
        return None

    res = cls(g).run(program)
    # round 1: vertex 1's send to the just-terminated vertex 0 is dropped
    # and NOT counted; round 2: only vertex 1's own halt notice
    assert res.metrics.messages_per_round == (1, 1)
    assert res.outputs == {0: "gone", 1: None}


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_broadcast_to_same_round_terminators_partially_dropped(engine):
    """Broadcasts count only the copies addressed to receivers that did
    not terminate in the sending round."""
    from repro.runtime.reference import ReferenceSyncNetwork

    cls = SyncNetwork if engine == "fast" else ReferenceSyncNetwork
    g = gen.path(3)  # 1 is the middle vertex

    def program(ctx):
        if ctx.v == 0:
            return None  # halts in round 1
        if ctx.v == 1:
            ctx.broadcast("x")  # 2 copies sent; the one to 0 is dropped
            yield
            return None
        yield
        return None

    res = cls(g).run(program)
    # round 1: only the 1->2 copy counts (+ vertex 0's halt notice)
    assert res.metrics.messages_per_round[0] == 1 + 1


def test_fast_and_reference_count_identically_under_churn():
    from repro.runtime.reference import ReferenceSyncNetwork

    g = gen.gnp(40, 0.12, seed=3)

    def program(ctx):
        for r in range(1 + ctx.v % 4):
            ctx.broadcast(("r", r))
            yield
        return None

    fast = SyncNetwork(g).run(program)
    ref = ReferenceSyncNetwork(g).run(program)
    assert fast.metrics.messages_per_round == ref.metrics.messages_per_round

"""The sharded executor's bit-identity pin.

The sharded bulk executor (:mod:`repro.runtime.shard` +
:mod:`repro.core.shard`) re-runs the columnar drivers across worker
processes over shared-memory CSR; these tests pin the contract that
sharding is *invisible* in every observable:

* the equivalence matrix: each bulk-capable algorithm, over shard counts
  {1, 2, 4, 7} and multiple seeds, produces outputs and the full metrics
  surface bit-identical to the unsharded bulk engine;
* the aggregate event trace is identical too;
* crash-stop / message-drop fault plans on sharded Partition reproduce
  the **fast engine's** faulted run exactly (the fault layer's
  counter-based draws make the injected stream shard-count-invariant),
  including session state (crashed set, session round counter) across
  consecutive runs;
* uneven partitions -- n not divisible by the shard count, shards with
  only isolated vertices, more shards than vertices -- change nothing.
"""

import numpy as np
import pytest

from repro.bench.workloads import WORKLOADS
from repro.graphs import generators as gen
from repro.runtime import (
    ShardError,
    engine_session,
    shard_session,
)
from repro.runtime.shard import resolve_bounds

SHARD_COUNTS = (1, 2, 4, 7)
SEEDS = (0, 1)
N = 120


def _metrics_surface(m):
    return (
        m.rounds,
        m.active_trace,
        m.messages_per_round,
        m.vertex_averaged,
        m.worst_case,
        m.round_sum,
        m.total_messages,
    )


def _instance(family, seed, n=N):
    g, a = WORKLOADS[family](n, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    return g, a, ids


def _bulk(run):
    with engine_session("bulk"):
        return run()


def _sharded(run, shards, partitioner="range"):
    with engine_session("bulk"), shard_session(shards, partitioner):
        return run()


def _assert_identical(got, ref, payload):
    assert payload(got) == payload(ref)
    assert _metrics_surface(got.metrics) == _metrics_surface(ref.metrics)


# ---------------------------------------------------------------------------
# The equivalence matrix: sharded == unsharded bulk, all four algorithms
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_partition(shards, seed):
    import repro

    g, a, ids = _instance("forest_union_a3", seed)
    run = lambda: repro.run_partition(g, a=a, ids=ids)  # noqa: E731
    _assert_identical(_sharded(run, shards), _bulk(run), lambda r: r.h_index)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_luby_mis(shards, seed):
    import repro

    g, _a, ids = _instance("gnp_sparse", seed)
    run = lambda: repro.run_luby_mis(g, ids=ids, seed=seed)  # noqa: E731
    _assert_identical(
        _sharded(run, shards), _bulk(run), lambda r: (r.in_mis, r.h_index)
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_cole_vishkin(shards, seed):
    import repro

    g = gen.ring(97)
    ids = gen.random_ids(97, seed=1000 + seed)
    run = lambda: repro.run_ring_three_coloring(g, ids=ids)  # noqa: E731
    _assert_identical(_sharded(run, shards), _bulk(run), lambda r: r.colors)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_defective_coloring(shards, seed):
    import repro

    g, _a, ids = _instance("star_forest", seed)
    run = lambda: repro.run_defective_coloring(g, d=2, ids=ids)  # noqa: E731
    _assert_identical(
        _sharded(run, shards),
        _bulk(run),
        lambda r: (r.colors, r.palette_bound, r.defect_bound),
    )


def test_edge_partitioner_matches_range():
    """Both partitioners must give identical results -- the seam only
    moves the cut points, never the semantics."""
    import repro

    g, a, ids = _instance("forest_union_a3", 0)
    ref = _bulk(lambda: repro.run_partition(g, a=a, ids=ids))
    for part in ("range", "edge"):
        got = _sharded(lambda: repro.run_partition(g, a=a, ids=ids), 3, part)
        _assert_identical(got, ref, lambda r: r.h_index)


def test_trace_events_identical():
    """The aggregate obs event stream matches the unsharded bulk one."""
    import repro
    import repro.obs as obs
    from repro.obs.sinks import MemorySink

    g, a, ids = _instance("forest_union_a3", 0)

    def trace(shards):
        sink = MemorySink()
        with obs.session(sink):
            if shards is None:
                _bulk(lambda: repro.run_partition(g, a=a, ids=ids))
            else:
                _sharded(lambda: repro.run_partition(g, a=a, ids=ids), shards)
        return sink.events

    ref = trace(None)
    assert ref  # the bulk engine does emit aggregate round events
    for shards in (1, 3):
        assert trace(shards) == ref


# ---------------------------------------------------------------------------
# Uneven partitions and degenerate shapes
# ---------------------------------------------------------------------------


def test_uneven_partition_n_not_divisible():
    """n = 13 across 7 shards: ragged ranges, some of size 1."""
    import repro

    g, a, ids = _instance("forest_union_a3", 3, n=13)
    ref = _bulk(lambda: repro.run_partition(g, a=a, ids=ids))
    got = _sharded(lambda: repro.run_partition(g, a=a, ids=ids), 7)
    _assert_identical(got, ref, lambda r: r.h_index)


def test_shard_of_isolated_vertices():
    """A shard whose entire range is isolated vertices (degree 0)."""
    import repro
    from repro.graphs.graph import Graph

    # vertices 0..9 form a path, 10..19 are isolated: with 2 range shards
    # the second shard is all-isolated
    edges = [(v, v + 1) for v in range(9)]
    g = Graph(20, edges)
    ref = _bulk(lambda: repro.run_partition(g, a=1))
    got = _sharded(lambda: repro.run_partition(g, a=1), 2)
    _assert_identical(got, ref, lambda r: r.h_index)
    mis_ref = _bulk(lambda: repro.run_luby_mis(g, seed=0))
    mis_got = _sharded(lambda: repro.run_luby_mis(g, seed=0), 2)
    _assert_identical(mis_got, mis_ref, lambda r: (r.in_mis, r.h_index))


def test_more_shards_than_vertices():
    """Empty shards (lo == hi) must participate in the barrier protocol
    without perturbing anything."""
    import repro

    g, a, ids = _instance("forest_union_a3", 0, n=5)
    ref = _bulk(lambda: repro.run_partition(g, a=a, ids=ids))
    got = _sharded(lambda: repro.run_partition(g, a=a, ids=ids), 7)
    _assert_identical(got, ref, lambda r: r.h_index)


def test_partitioner_bounds_shapes():
    g, _a, _ids = _instance("forest_union_a3", 0, n=13)
    from repro.runtime.shard import ShardSession

    for part in ("range", "edge"):
        bounds = resolve_bounds(g, ShardSession(7, part))
        assert len(bounds) == 8
        assert bounds[0] == 0 and bounds[-1] == g.n
        assert all(b1 <= b2 for b1, b2 in zip(bounds, bounds[1:]))


# ---------------------------------------------------------------------------
# Fault plans: shard-count-invariant, identical to the fast engine
# ---------------------------------------------------------------------------


def _fault_plan():
    from repro.faults import CrashSpec, FaultPlan, MessageFaults

    return FaultPlan(
        seed=11,
        crashes=CrashSpec(at={3: 1, 17: 2}, hazard=0.02),
        messages=MessageFaults(drop=0.08),
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_faulted_partition_matches_fast_engine(shards):
    """Crash-stop + drop plan: the sharded run reproduces the fast
    engine's faulted execution exactly -- outputs, per-vertex rounds,
    active trace, message totals, and the crashed set."""
    import repro
    from repro import faults as flt

    g, a, ids = _instance("forest_union_a3", 2)
    plan = _fault_plan()

    with flt.session(plan) as inj:
        ref = repro.run_partition(g, a=a, ids=ids)
    ref_crashed = sorted(inj.crashed)
    assert ref_crashed  # the plan actually strikes on this instance

    with engine_session("bulk"), shard_session(shards), flt.session(plan) as inj2:
        got = repro.run_partition(g, a=a, ids=ids)
    assert got.h_index == ref.h_index
    assert _metrics_surface(got.metrics) == _metrics_surface(ref.metrics)
    assert sorted(inj2.crashed) == ref_crashed


def test_faulted_session_state_persists_across_runs():
    """Two runs in one fault session: the second must see the first's
    crashed set and session round counter, exactly like the fast engine."""
    import repro
    from repro import faults as flt
    from repro.faults import CrashSpec, FaultPlan

    g, a, ids = _instance("forest_union_a3", 0)
    plan = FaultPlan(seed=5, crashes=CrashSpec(hazard=0.03))

    def two_runs(shards):
        with flt.session(plan) as inj:
            if shards is None:
                r1 = repro.run_partition(g, a=a, ids=ids)
                r2 = repro.run_partition(g, a=a - 1, ids=ids)
            else:
                with engine_session("bulk"), shard_session(shards):
                    r1 = repro.run_partition(g, a=a, ids=ids)
                    r2 = repro.run_partition(g, a=a - 1, ids=ids)
            return (
                r1.h_index,
                r2.h_index,
                _metrics_surface(r2.metrics),
                sorted(inj.crashed),
                inj._round,
            )

    ref = two_runs(None)
    assert ref[3]  # some vertex crashed across the two runs
    for shards in (1, 3):
        assert two_runs(shards) == ref


def test_faulted_trace_is_shard_count_invariant():
    import repro
    import repro.obs as obs
    from repro import faults as flt
    from repro.obs.sinks import MemorySink

    g, a, ids = _instance("forest_union_a3", 1)
    plan = _fault_plan()

    def trace(shards):
        sink = MemorySink()
        with obs.session(sink), engine_session("bulk"), shard_session(shards):
            with flt.session(plan):
                repro.run_partition(g, a=a, ids=ids)
        return sink.events

    ref = trace(1)
    assert any(e.kind == "fault_crash" for e in ref)
    for shards in (2, 5):
        assert trace(shards) == ref


def test_sharded_rejects_unsupported_fault_plans():
    """Duplicate/delay plans have no sharded seam anywhere in the bulk
    zoo -- crash-stop and drop plans do (see test_fault_matrix.py)."""
    import repro
    from repro import faults as flt
    from repro.faults import FaultPlan, MessageFaults
    from repro.runtime import BulkUnsupported

    g, a, ids = _instance("forest_union_a3", 0, n=40)
    dup = FaultPlan(seed=1, messages=MessageFaults(duplicate=0.1))
    with engine_session("bulk"), shard_session(2), flt.session(dup):
        with pytest.raises(BulkUnsupported, match="duplicate/delay"):
            repro.run_partition(g, a=a, ids=ids)
        with pytest.raises(BulkUnsupported, match="duplicate/delay"):
            repro.run_luby_mis(g, ids=ids, seed=0)
    delay = FaultPlan(seed=1, messages=MessageFaults(delay=0.1, max_delay=2))
    with engine_session("bulk"), shard_session(2), flt.session(delay):
        with pytest.raises(BulkUnsupported, match="duplicate/delay"):
            repro.run_luby_mis(g, ids=ids, seed=0)


# ---------------------------------------------------------------------------
# Cross-process phase profiling
# ---------------------------------------------------------------------------


def test_sharded_run_fills_per_shard_profiler_slots():
    """With a profiler on the bus, every worker reports its (compute,
    barrier, allreduce, publish) seconds through the shared-memory timing
    block and the parent merges them into per-shard slots."""
    import repro
    import repro.obs as obs
    from repro.obs import PhaseProfiler
    from repro.runtime.shard import SHARD_PHASES

    g, a, ids = _instance("forest_union_a3", 0)
    prof = PhaseProfiler()
    with obs.session(profiler=prof):
        _sharded(lambda: repro.run_partition(g, a=a, ids=ids), 2)

    assert sorted(prof.shard_seconds) == [0, 1]
    for idx in (0, 1):
        assert set(prof.shard_seconds[idx]) == set(SHARD_PHASES)
        # every worker synchronises and reduces at least once per round
        assert prof.shard_counts[idx]["barrier"] > 0
        assert prof.shard_counts[idx]["allreduce"] > 0
        assert all(v >= 0.0 for v in prof.shard_seconds[idx].values())
    # the parent-side publish section lands in the flat store
    assert "publish" in prof.seconds
    report = prof.shard_report()
    assert "shard" in report and "barrier" in report and "sum" in report


def test_profiled_sharded_run_stays_bit_identical():
    """Profiling is observation only: the profiled sharded run's outputs
    and metrics match the unprofiled, unsharded bulk reference."""
    import repro
    import repro.obs as obs
    from repro.obs import PhaseProfiler

    g, a, ids = _instance("forest_union_a3", 1)
    ref = _bulk(lambda: repro.run_partition(g, a=a, ids=ids))
    with obs.session(profiler=PhaseProfiler()):
        got = _sharded(lambda: repro.run_partition(g, a=a, ids=ids), 3)
    _assert_identical(got, ref, lambda r: r.h_index)


# ---------------------------------------------------------------------------
# The execute() seam and error paths
# ---------------------------------------------------------------------------


def test_execute_shards_kwarg():
    from repro import zoo

    g, a, ids = _instance("forest_union_a3", 0)
    ref = zoo.execute("partition", g, a, ids, 0, engine="bulk")
    ex = zoo.execute("partition", g, a, ids, 0, engine="bulk", shards=3)
    assert ex.completed
    assert ex.result.h_index == ref.result.h_index
    assert _metrics_surface(ex.result.metrics) == _metrics_surface(
        ref.result.metrics
    )
    assert "OK" in ex.validate(g) or "partition" in ex.validate(g).lower()


def test_execute_shards_requires_bulk_engine():
    from repro import zoo

    g, a, ids = _instance("forest_union_a3", 0, n=20)
    with pytest.raises(ValueError, match="requires engine='bulk'"):
        zoo.execute("partition", g, a, ids, 0, engine="fast", shards=2)


def test_execute_sharded_fault_plan_passes_through():
    """execute() lets a plan through to the bulk/sharded drivers (which
    own the support matrix) -- sharded or not, the fault-aware kernel
    replays the same adversary the fast engine draws."""
    from repro import zoo
    from repro.faults import CrashSpec, FaultPlan

    g, a, ids = _instance("forest_union_a3", 2)
    plan = FaultPlan(seed=11, crashes=CrashSpec(at={3: 1}))
    ref = zoo.execute("partition", g, a, ids, 0, faults=plan)
    ex = zoo.execute("partition", g, a, ids, 0, engine="bulk", shards=2, faults=plan)
    assert ex.completed
    assert ex.crashed == ref.crashed
    assert ex.result.h_index == ref.result.h_index
    # unsharded bulk delegates to the in-process fault kernel and agrees
    unsharded = zoo.execute("partition", g, a, ids, 0, engine="bulk", faults=plan)
    assert unsharded.completed
    assert unsharded.crashed == ref.crashed
    assert unsharded.result.h_index == ref.result.h_index


def test_shard_session_validates_arguments():
    with pytest.raises(ValueError, match="shard count"):
        with shard_session(0):
            pass
    with pytest.raises(ValueError, match="partitioner"):
        with shard_session(2, "nope"):
            pass


def test_worker_exception_propagates_as_shard_error():
    """A worker crash must surface as ShardError with the traceback, not
    a hang."""
    from repro.runtime.shard import SharedArrays, run_sharded

    shared = SharedArrays()
    try:
        with pytest.raises(ShardError, match="no-such-kernel"):
            run_sharded("no-such-kernel", [0, 1, 2], shared, {})
    finally:
        shared.cleanup()


def test_watchdog_fires_identically():
    """RoundLimitExceeded carries the same budget and active set."""
    from repro.core.bulk import bulk_partition
    from repro.core.shard import sharded_partition
    from repro.runtime import RoundLimitExceeded

    # K_9 with a=1 gives A=3 < deg=8: nobody ever joins, watchdog fires
    g = gen.complete(9)
    with engine_session("bulk"):
        with pytest.raises(RoundLimitExceeded) as bulk_err:
            bulk_partition(g, a=1, max_rounds=3)
    with engine_session("bulk"), shard_session(3):
        with pytest.raises(RoundLimitExceeded) as shard_err:
            sharded_partition(g, a=1, max_rounds=3)
    assert shard_err.value.limit == bulk_err.value.limit
    assert sorted(shard_err.value.active) == sorted(bulk_err.value.active)


def test_large_int32_csr_run_matches():
    """A graph big enough to exercise the int32 CSR view end-to-end."""
    import repro

    g = gen.forest_union_csr(3000, 3, seed=0)
    offsets, indices = g.csr(dtype="auto")
    assert indices.dtype == np.int32
    ref = _bulk(lambda: repro.run_partition(g, a=3))
    got = _sharded(lambda: repro.run_partition(g, a=3), 4)
    _assert_identical(got, ref, lambda r: r.h_index)

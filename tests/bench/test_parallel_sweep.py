"""The parallel sweep runner must be a pure speedup: identical Series to
the serial path, deterministic ordering, graceful degradation."""

import pytest

import repro
from repro.bench import make_workload, sweep
from repro.bench.runner import SweepPoint, _fork_available


WL = make_workload("forest_union_a2")


def _run(g, a, ids, s):
    return repro.run_partition(g, a=a, ids=ids)


class TestParallelSweep:
    def test_parallel_equals_serial(self):
        serial = sweep("p", _run, WL, (60, 120), seeds=2, parallel=False)
        parallel = sweep("p", _run, WL, (60, 120), seeds=2, parallel=True)
        assert serial.points == parallel.points  # wall excluded from eq
        assert serial.ns == parallel.ns == [60, 120]

    def test_parallel_equals_serial_with_lambdas_and_colors(self):
        # benchmarks pass lambdas/closures: the fork-inheritance path must
        # carry them into workers without pickling errors
        kwargs = dict(
            seeds=2,
            colors_of=lambda r: r.colors_used,
        )
        run = lambda g, a, ids, s: repro.run_a2logn_coloring(g, a=a, ids=ids)
        serial = sweep("c", run, WL, (60, 100), parallel=False, **kwargs)
        parallel = sweep("c", run, WL, (60, 100), parallel=True, **kwargs)
        assert serial.points == parallel.points
        assert [p.colors for p in parallel.points] == [
            p.colors for p in serial.points
        ]

    def test_randomized_algorithms_stay_deterministic(self):
        run = lambda g, a, ids, s: repro.run_rand_delta_plus_one(g, ids=ids, seed=s)
        serial = sweep("r", run, WL, (80,), seeds=3, parallel=False)
        parallel = sweep("r", run, WL, (80,), seeds=3, parallel=True)
        assert serial.points == parallel.points

    def test_wall_clock_recorded_per_point(self):
        s = sweep("w", _run, WL, (60, 120), seeds=2, parallel=False)
        assert all(p.wall > 0 for p in s.points)
        assert s.total_wall == pytest.approx(sum(p.wall for p in s.points))

    def test_wall_excluded_from_equality(self):
        a = SweepPoint(n=1, avg_mean=1.0, avg_max=1.0, worst_mean=1.0, worst_max=1, wall=0.5)
        b = SweepPoint(n=1, avg_mean=1.0, avg_max=1.0, worst_mean=1.0, worst_max=1, wall=9.9)
        assert a == b

    def test_escape_hatch_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PARALLEL_SWEEP", "1")
        assert not _fork_available()
        s = sweep("e", _run, WL, (60,), seeds=1, parallel=True)  # degrades
        assert s.points[0].n == 60

    def test_auto_mode_small_sweeps_stay_serial(self):
        # < _AUTO_PARALLEL_MIN_TASKS points: no pool is spun up (observable
        # only via timing; here we just assert correctness of the result)
        s = sweep("a", _run, WL, (60,), seeds=2)
        assert len(s.points) == 1

"""Runner hardening: pool breakage salvage, typed timeouts, recorded
execution mode, loud degradation, and worker-state hygiene."""

import multiprocessing
import os
import time

import pytest

import repro
from repro.bench import make_workload, sweep
from repro.bench.runner import (
    SweepDegradedWarning,
    SweepTimeout,
    _WORKER_STATE,
    _fork_available,
)

WL = make_workload("forest_union_a2")

pytestmark = pytest.mark.skipif(
    not _fork_available() and not os.environ.get("REPRO_NO_PARALLEL_SWEEP"),
    reason="parallel sweep requires the fork start method",
)


def _run(g, a, ids, s):
    return repro.run_partition(g, a=a, ids=ids)


def _crashy_run(g, a, ids, s):
    # Simulate an OOM-killed / segfaulted worker: die hard, but ONLY
    # inside a pool worker -- the serial salvage re-run (parent process)
    # must succeed and produce the real value.
    if s == 1 and multiprocessing.parent_process() is not None:
        os._exit(137)
    return repro.run_partition(g, a=a, ids=ids)


def _sleepy_run(g, a, ids, s):
    if s == 1 and multiprocessing.parent_process() is not None:
        time.sleep(2.0)
    return repro.run_partition(g, a=a, ids=ids)


def _raising_run(g, a, ids, s):
    if s == 1:
        raise RuntimeError("algorithm bug, not infrastructure")
    return repro.run_partition(g, a=a, ids=ids)


class TestSalvage:
    def test_worker_crash_salvages_to_complete_series(self):
        serial = sweep("s", _crashy_run, WL, (40, 60), seeds=2, parallel=False)
        with pytest.warns(SweepDegradedWarning, match="re-running"):
            salvaged = sweep(
                "s", _crashy_run, WL, (40, 60), seeds=2, parallel=True
            )
        assert salvaged.mode == "salvaged"
        assert serial.mode == "serial"
        # the salvaged sweep is complete and value-identical to serial
        assert salvaged.points == serial.points
        assert salvaged.ns == [40, 60]

    def test_worker_crash_leaves_no_worker_state(self):
        with pytest.warns(SweepDegradedWarning):
            sweep("s", _crashy_run, WL, (40,), seeds=2, parallel=True)
        assert _WORKER_STATE == {}


class TestTimeout:
    def test_hung_worker_raises_typed_timeout_naming_the_cell(self):
        with pytest.raises(SweepTimeout) as exc:
            sweep(
                "t",
                _sleepy_run,
                WL,
                (40,),
                seeds=2,
                parallel=True,
                timeout=0.5,
            )
        err = exc.value
        assert err.n == 40
        assert err.seed == 1
        assert err.timeout == 0.5
        assert "(n=40, seed=1)" in str(err)
        assert isinstance(err, TimeoutError)

    def test_timeout_clears_worker_state(self):
        with pytest.raises(SweepTimeout):
            sweep(
                "t", _sleepy_run, WL, (40,), seeds=2, parallel=True, timeout=0.5
            )
        assert _WORKER_STATE == {}

    def test_fast_sweep_passes_under_generous_timeout(self):
        s = sweep("t", _run, WL, (40,), seeds=2, parallel=True, timeout=120.0)
        assert s.mode == "parallel"
        assert len(s.points) == 1


class TestMode:
    def test_parallel_mode_recorded(self):
        s = sweep("m", _run, WL, (40, 60), seeds=2, parallel=True)
        assert s.mode == "parallel"

    def test_serial_mode_recorded(self):
        s = sweep("m", _run, WL, (40,), seeds=1, parallel=False)
        assert s.mode == "serial"

    def test_auto_small_sweep_is_serial(self):
        s = sweep("m", _run, WL, (40,), seeds=2)  # below the auto threshold
        assert s.mode == "serial"

    def test_mode_excluded_from_equality(self):
        a = sweep("m", _run, WL, (40,), seeds=2, parallel=False)
        b = sweep("m", _run, WL, (40,), seeds=2, parallel=True)
        assert b.mode == "parallel"
        assert a == b  # values identical; mode is metadata


class TestDegradationIsLoud:
    def test_env_escape_hatch_warns_when_parallel_requested(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PARALLEL_SWEEP", "1")
        with pytest.warns(SweepDegradedWarning, match="REPRO_NO_PARALLEL_SWEEP"):
            s = sweep("d", _run, WL, (40,), seeds=2, parallel=True)
        assert s.mode == "serial"
        assert len(s.points) == 1

    def test_env_escape_hatch_keeps_worker_state_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PARALLEL_SWEEP", "1")
        with pytest.warns(SweepDegradedWarning):
            sweep("d", _run, WL, (40,), seeds=2, parallel=True)
        assert _WORKER_STATE == {}

    def test_explicit_serial_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", SweepDegradedWarning)
            sweep("d", _run, WL, (40,), seeds=2, parallel=False)


class TestWorkerStateHygiene:
    def test_cleared_after_successful_parallel_sweep(self):
        sweep("h", _run, WL, (40, 60), seeds=2, parallel=True)
        assert _WORKER_STATE == {}

    def test_cleared_when_pool_setup_raises(self, monkeypatch):
        import concurrent.futures

        def boom(*a, **k):
            raise OSError("no more processes")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
        with pytest.raises(OSError, match="no more processes"):
            sweep("h", _run, WL, (40,), seeds=2, parallel=True)
        assert _WORKER_STATE == {}

    def test_cleared_when_the_algorithm_itself_raises(self):
        # a real bug in run() propagates (it is not infrastructure) but
        # must not leak the stashed callables
        with pytest.raises(RuntimeError, match="algorithm bug"):
            sweep("h", _raising_run, WL, (40,), seeds=2, parallel=True)
        assert _WORKER_STATE == {}

"""The kernel perf baseline: measurement, persistence, regression gate."""

import json

import pytest

from repro.bench import baseline


def test_measure_kernel_shape():
    result = baseline.measure_kernel(ns=(120,), rounds=3)
    assert set(result["engines"]) == {"fast", "reference"}
    for eng in result["engines"].values():
        (point,) = eng
        assert point["n"] == 120
        assert point["steps"] > 0 and point["msgs"] > 0
        assert point["steps_per_s"] > 0 and point["wall_s"] >= 0
    # both engines replay the identical execution
    fast, ref = result["engines"]["fast"][0], result["engines"]["reference"][0]
    assert fast["steps"] == ref["steps"]
    assert fast["msgs"] == ref["msgs"]
    assert "120" in result["speedup"]


def test_write_and_load_roundtrip(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    written = baseline.write_baseline(str(path), ns=(100,), rounds=2)
    loaded = baseline.load_baseline(str(path))
    assert loaded == json.loads(json.dumps(written))
    assert loaded["workload"].startswith("union_of_forests")


def test_compare_flags_regressions():
    stored = {"speedup": {"32000": 5.0}}
    ok = {"speedup": {"32000": 4.0}}
    assert baseline.compare_to_baseline(ok, stored) == []
    regressed = {"speedup": {"32000": 3.0}}  # floor is 5.0 * 0.7 = 3.5
    problems = baseline.compare_to_baseline(regressed, stored)
    assert len(problems) == 1 and "regressed" in problems[0]
    slower = {"speedup": {"32000": 0.9}}
    problems = baseline.compare_to_baseline(slower, stored)
    assert any("slower than the reference" in p for p in problems)
    # unknown points are tolerated (lets the sweep grow later)
    assert baseline.compare_to_baseline({"speedup": {"64000": 4.0}}, stored) == []


def test_compare_flags_instrumentation_overhead():
    stored = {"speedup": {}}
    overhead = {
        "n": 8000,
        "bare_cpu_s": 0.2,
        "null_sink_cpu_s": 0.22,
        "overhead_pct": 9.0,
        "overhead_floor_pct": 7.5,
    }
    current = {"speedup": {}, "null_sink_overhead": dict(overhead)}
    problems = baseline.compare_to_baseline(current, stored)
    assert len(problems) == 1 and "instrumentation overhead" in problems[0]
    # a high median with a low floor is noise, not a regression
    current["null_sink_overhead"]["overhead_floor_pct"] = 0.4
    assert baseline.compare_to_baseline(current, stored) == []


def test_cli_check_against_fresh_file(tmp_path, capsys):
    path = tmp_path / "BENCH_kernel.json"
    baseline.write_baseline(str(path), ns=(100,), rounds=2)
    # checking right after writing must pass (same machine, same code)
    rc = baseline.main(["--check", "--path", str(path), "--quick"])
    out = capsys.readouterr().out
    # note: --quick uses its own ns; unknown keys are tolerated, and the
    # fast engine must still beat the reference
    assert "kernel perf check:" in out
    assert rc == 0, out


def test_committed_baseline_is_valid():
    """The repo-root BENCH_kernel.json parses and records a >=3x speedup
    at the acceptance point n=32000."""
    data = baseline.load_baseline()
    assert data["speedup"]["32000"] >= 3.0
    ns = [p["n"] for p in data["engines"]["fast"]]
    assert 32000 in ns

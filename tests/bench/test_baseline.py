"""The kernel perf baseline: measurement, persistence, regression gate."""

import json

import pytest

from repro.bench import baseline


def test_measure_kernel_shape():
    result = baseline.measure_kernel(ns=(120,), rounds=3, bulk_ns=(120,))
    assert set(result["engines"]) == {"fast", "reference", "bulk"}
    for eng in result["engines"].values():
        (point,) = eng
        assert point["n"] == 120
        assert point["steps"] > 0 and point["msgs"] > 0
        assert point["steps_per_s"] > 0 and point["wall_s"] >= 0
    # all three engines replay the identical execution
    fast, ref = result["engines"]["fast"][0], result["engines"]["reference"][0]
    bulk = result["engines"]["bulk"][0]
    assert fast["steps"] == ref["steps"] == bulk["steps"]
    assert fast["msgs"] == ref["msgs"] == bulk["msgs"]
    assert "120" in result["speedup"]
    assert "120" in result["bulk_speedup"]


def test_measure_kernel_default_bulk_sweep_adds_large_n():
    """Without an explicit ``bulk_ns`` the bulk engine gets the extra
    :data:`~repro.bench.baseline.BULK_N` point the coroutine engines
    cannot afford (checked structurally, without measuring)."""
    import inspect

    sig = inspect.signature(baseline.measure_kernel)
    assert sig.parameters["bulk_ns"].default is None
    assert baseline.BULK_N == 100_000


def test_measure_engine_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine 'gpu'"):
        baseline.measure_engine("gpu", ns=(10,))


def test_write_and_load_roundtrip(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    written = baseline.write_baseline(
        str(path), ns=(100,), rounds=2, bulk_ns=(100,)
    )
    loaded = baseline.load_baseline(str(path))
    assert loaded == json.loads(json.dumps(written))
    assert loaded["workload"].startswith("union_of_forests")


def test_engine_points_guard_names_missing_engine():
    """Satellite regression: a baseline file that predates an engine must
    produce a clear, actionable error -- never a bare ``KeyError``."""
    stale = {"engines": {"fast": [], "reference": []}, "speedup": {}}
    assert baseline.engine_points(stale, "fast") == []
    with pytest.raises(ValueError) as exc:
        baseline.engine_points(stale, "bulk")
    msg = str(exc.value)
    assert "no 'bulk' engine entry" in msg
    assert "fast, reference" in msg  # says what *is* recorded
    assert "--write" in msg  # and how to fix it
    # a file with no engines section at all gets the same treatment
    with pytest.raises(ValueError, match="recorded engines: <none>"):
        baseline.engine_points({}, "bulk")


def test_compare_flags_regressions():
    stored = {"speedup": {"32000": 5.0}}
    ok = {"speedup": {"32000": 4.0}}
    assert baseline.compare_to_baseline(ok, stored) == []
    regressed = {"speedup": {"32000": 3.0}}  # floor is 5.0 * 0.7 = 3.5
    problems = baseline.compare_to_baseline(regressed, stored)
    assert len(problems) == 1 and "regressed" in problems[0]
    slower = {"speedup": {"32000": 0.9}}
    problems = baseline.compare_to_baseline(slower, stored)
    assert any("slower than the reference" in p for p in problems)
    # unknown points are tolerated (lets the sweep grow later)
    assert baseline.compare_to_baseline({"speedup": {"64000": 4.0}}, stored) == []


def test_compare_flags_bulk_regressions():
    stored = {"speedup": {}, "bulk_speedup": {"32000": 20.0}}
    ok = {"speedup": {}, "bulk_speedup": {"32000": 18.0}}
    assert baseline.compare_to_baseline(ok, stored) == []
    regressed = {"speedup": {}, "bulk_speedup": {"32000": 10.0}}  # floor 14.0
    problems = baseline.compare_to_baseline(regressed, stored)
    assert len(problems) == 1 and "bulk/fast" in problems[0]
    slower = {"speedup": {}, "bulk_speedup": {"32000": 0.8}}
    problems = baseline.compare_to_baseline(slower, stored)
    assert any("slower than the fast engine" in p for p in problems)
    # a current run without bulk numbers never trips the bulk gates
    assert baseline.compare_to_baseline({"speedup": {}}, stored) == []


def test_compare_flags_stale_baseline_without_bulk_entry():
    """Satellite regression: ``--check`` against a pre-bulk baseline file
    reports the missing engine entry instead of raising ``KeyError``."""
    stale = {"engines": {"fast": [], "reference": []}, "speedup": {}}
    current = {"speedup": {}, "bulk_speedup": {"2000": 12.0}}
    problems = baseline.compare_to_baseline(current, stale)
    assert len(problems) == 1
    assert "no 'bulk' engine entry" in problems[0]
    assert "--write" in problems[0]


def test_compare_flags_missing_large_n_bulk_cell():
    stored = {"speedup": {}, "bulk_speedup": {}}
    current = {
        "speedup": {},
        "bulk_speedup": {"2000": 12.0},
        "engines": {"bulk": [{"n": 2000}]},
    }
    problems = baseline.compare_to_baseline(current, stored)
    assert len(problems) == 1 and f"n={baseline.BULK_N}" in problems[0]
    current["engines"]["bulk"].append({"n": baseline.BULK_N})
    assert baseline.compare_to_baseline(current, stored) == []


def test_compare_flags_instrumentation_overhead():
    stored = {"speedup": {}}
    overhead = {
        "n": 8000,
        "bare_cpu_s": 0.2,
        "null_sink_cpu_s": 0.22,
        "overhead_pct": 9.0,
        "overhead_floor_pct": 7.5,
    }
    current = {"speedup": {}, "null_sink_overhead": dict(overhead)}
    problems = baseline.compare_to_baseline(current, stored)
    assert len(problems) == 1 and "instrumentation overhead" in problems[0]
    # a high median with a low floor is noise, not a regression
    current["null_sink_overhead"]["overhead_floor_pct"] = 0.4
    assert baseline.compare_to_baseline(current, stored) == []


def test_cli_check_against_fresh_file(tmp_path, capsys):
    path = tmp_path / "BENCH_kernel.json"
    baseline.write_baseline(str(path), ns=(100,), rounds=2, bulk_ns=(100,))
    # the engine sweep and the shard series are written separately
    # (--write then --write-shards); --check requires both
    baseline.write_shard_scaling(
        str(path), ns=(200,), shard_counts=(1,), large_n=None, repeats=1
    )
    # checking right after writing must pass (same machine, same code)
    rc = baseline.main(["--check", "--path", str(path), "--quick"])
    out = capsys.readouterr().out
    # note: --quick uses its own ns; unknown keys are tolerated, the fast
    # engine must still beat the reference, and the bulk sweep includes
    # the large-n cell CI watches
    assert "kernel perf check:" in out
    assert "bulk/fast msgs/s" in out
    assert f"n={baseline.BULK_N}: bulk" in out
    assert rc == 0, out


def test_committed_baseline_is_valid():
    """The repo-root BENCH_kernel.json parses and records the acceptance
    ratios: fast >=3x reference (steps/s) and bulk >=10x fast (msgs/s)
    at n=32000, with the large-n bulk cell present."""
    data = baseline.load_baseline()
    assert data["speedup"]["32000"] >= 3.0
    ns = [p["n"] for p in data["engines"]["fast"]]
    assert 32000 in ns
    assert data["bulk_speedup"]["32000"] >= 10.0
    bulk_ns = [p["n"] for p in baseline.engine_points(data, "bulk")]
    assert baseline.BULK_N in bulk_ns


def test_shard_points_guard_names_regeneration_command():
    """A baseline file predating the sharded executor must produce a
    clear, actionable error -- never a bare ``KeyError``."""
    with pytest.raises(ValueError) as exc:
        baseline.shard_points({"engines": {}})
    msg = str(exc.value)
    assert "shard_scaling" in msg
    assert "--write-shards" in msg  # says how to regenerate
    with pytest.raises(ValueError, match="--write-shards"):
        baseline.shard_points({"shard_scaling": {"points": []}})


def test_check_shard_scaling_quick_is_structural_only():
    data = {"shard_scaling": {"points": [{"n": 1, "shards": 0, "wall_s": 1}]}}
    problems, skip = baseline.check_shard_scaling(data, quick=True)
    assert problems == []
    assert skip and "quick" in skip


def test_check_shard_scaling_skips_below_core_floor(monkeypatch):
    """On < MIN_SHARD_CORES cores the live self-speedup gate must skip
    with a reason, not fail spuriously."""
    monkeypatch.setattr(baseline, "usable_cores", lambda: 1)
    data = {"shard_scaling": {"points": [{"n": 1, "shards": 0, "wall_s": 1}]}}
    problems, skip = baseline.check_shard_scaling(data, quick=False)
    assert problems == []
    assert skip and "1 usable core" in skip and "4" in skip


def test_check_shard_scaling_missing_series_is_a_problem():
    problems, skip = baseline.check_shard_scaling({}, quick=True)
    assert len(problems) == 1 and "--write-shards" in problems[0]
    assert skip is None


def test_measure_shard_scaling_small_sweep():
    """A tiny live sweep: the matrix covers (0, *shard_counts) x ns and
    every sharded cell reproduces the unsharded message count."""
    result = baseline.measure_shard_scaling(
        ns=(400,), shard_counts=(1, 2), large_n=None, repeats=1
    )
    pts = baseline.shard_points({"shard_scaling": result})
    assert [(p["n"], p["shards"]) for p in pts] == [(400, 0), (400, 1), (400, 2)]
    msgs = {p["shards"]: p["msgs"] for p in pts}
    assert msgs[1] == msgs[0] and msgs[2] == msgs[0]
    assert all(p["wall_s"] > 0 and p["msgs_per_s"] > 0 for p in pts)
    assert "400" in result["self_speedup"]
    assert result["gate"]["floor"] == baseline.SHARD_SPEEDUP_FLOOR
    assert result["cores"] == baseline.usable_cores()


def test_committed_baseline_has_shard_series():
    """The repo-root BENCH_kernel.json carries the shard-scaling series
    with the n = 10^7 acceptance cell."""
    data = baseline.load_baseline()
    pts = baseline.shard_points(data)
    large = [p for p in pts if p["n"] == baseline.SHARD_LARGE_N]
    assert large, "n=10^7 cell missing from shard_scaling series"
    assert {p["shards"] for p in large} == {0, baseline.SHARD_GATE_SHARDS}
    gate_ns = {p["n"] for p in pts}
    assert set(baseline.SHARD_NS) <= gate_ns

"""The fuzz loop and its CLI: sampling determinism, the smoke gate, and
end-to-end shrink-to-artifact on a deliberately broken verifier."""

import pytest

from repro.cli import main
from repro.faults import FaultPlan
from repro.faults.fuzz import FuzzReport, fuzz, sample_cases, sample_plan, smoke
from repro.verify import VerificationError


class TestSampling:
    def test_sampling_is_deterministic_in_seed(self):
        a = list(sample_cases(20, seed=5))
        b = list(sample_cases(20, seed=5))
        c = list(sample_cases(20, seed=6))
        assert a == b
        assert a != c

    def test_sampled_plans_are_never_empty(self):
        for case in sample_cases(50, seed=0):
            assert not case.plan.empty

    def test_crash_only_space_has_no_message_faults(self):
        for case in sample_cases(50, seed=1, crash_only=True):
            assert case.plan.messages is None

    def test_full_space_includes_message_faults(self):
        cases = list(sample_cases(50, seed=2))
        assert any(c.plan.messages is not None for c in cases)

    def test_sample_plan_round_trips(self):
        import random

        rng = random.Random(3)
        for _ in range(20):
            plan = sample_plan(rng)
            assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestSmoke:
    def test_smoke_has_zero_violations(self):
        """The CI gate's core claim: crash-only plans never break the
        safety of the seed algorithm zoo on the surviving subgraph."""
        report = smoke(budget=15, seed=0)
        assert report.ok
        assert report.count("violation") == 0
        assert len(report.outcomes) == 15

    def test_report_summary_counts(self):
        report = smoke(budget=6, seed=1)
        text = report.summary()
        assert "6 cases" in text and "0 VIOLATIONS" in text


class TestFailurePipeline:
    def test_broken_verifier_shrinks_to_replayable_artifact(self, tmp_path):
        def broken(g, res, alive):
            if g.n >= 20:
                raise VerificationError("planted defect")

        report = fuzz(
            budget=4,
            seed=3,
            out_dir=str(tmp_path),
            algorithms=["partition"],
            crash_only=True,
            checks={"partition": broken},
        )
        assert not report.ok
        assert report.violations
        small_outcome, original, path = report.violations[0]
        # shrunk below the original and still failing
        assert small_outcome.case.n <= original.n
        assert small_outcome.status == "violation"
        assert path is not None
        # the artifact replays: with the planted defect it fails again,
        # without it the same case is clean (the defect was the verifier)
        from repro.faults import replay_artifact

        assert (
            replay_artifact(path, checks={"partition": broken}).status
            == "violation"
        )
        assert replay_artifact(path).status in ("valid", "non-termination")

    def test_clean_run_writes_no_artifacts(self, tmp_path):
        out_dir = tmp_path / "artifacts"
        report = fuzz(
            budget=4,
            seed=0,
            out_dir=str(out_dir),
            algorithms=["partition"],
            crash_only=True,
        )
        assert report.ok
        assert not out_dir.exists()  # created only on failure

    def test_report_ok_property(self):
        assert FuzzReport().ok
        r = FuzzReport()
        r.violations.append((None, None, None))
        assert not r.ok


class TestCli:
    def test_cli_smoke_exits_zero(self, capsys):
        rc = main(["fuzz", "--smoke", "--budget", "8", "--seed", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "8 cases" in out
        assert "0 VIOLATIONS" in out

    def test_cli_verbose_prints_cases(self, capsys):
        rc = main(["fuzz", "--smoke", "--budget", "3", "-v"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("valid") + out.count("non-termination") >= 3

    def test_cli_replay_artifact(self, tmp_path, capsys):
        from repro.faults import CrashSpec, FuzzCase, run_case, write_artifact

        case = FuzzCase(
            algorithm="mis",
            workload="gnp_sparse",
            n=40,
            seed=5,
            plan=FaultPlan(seed=2, crashes=CrashSpec(at={3: 2, 7: 1})),
        )
        path = str(tmp_path / "case.json")
        write_artifact(path, run_case(case))
        rc = main(["fuzz", "--replay", path])
        out = capsys.readouterr().out
        assert rc == 0  # non-termination is caught, not a violation
        assert "non-termination" in out

    def test_cli_run_with_faults_flag(self, capsys):
        rc = main(
            [
                "run",
                "partition",
                "-n",
                "120",
                "--faults",
                '{"seed": 7, "crashes": {"hazard": 0.01}}',
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "faults   : seed=7 hazard=0.01" in out
        assert "survivor-safety OK" in out

    def test_cli_run_with_faults_file(self, tmp_path, capsys):
        spec = tmp_path / "plan.json"
        spec.write_text('{"seed": 1, "crashes": {"at": {"3": 1}}}')
        rc = main(["run", "partition", "-n", "80", "--faults", f"@{spec}"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "crashed: [3]" in out

"""FaultPlan / FaultInjector unit semantics: validation, serialisation,
counter-based determinism, and the session lifecycle."""

import random

import pytest

from repro.faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    MessageFaults,
    current,
    install,
    session,
)


class TestSpecs:
    def test_plan_empty_detection(self):
        assert FaultPlan().empty
        assert FaultPlan(seed=9).empty
        assert FaultPlan(crashes=CrashSpec()).empty
        assert FaultPlan(messages=MessageFaults()).empty
        assert not FaultPlan(crashes=CrashSpec(hazard=0.1)).empty
        assert not FaultPlan(crashes=CrashSpec(at={3: 1})).empty
        assert not FaultPlan(messages=MessageFaults(drop=0.1)).empty

    def test_crash_spec_validation(self):
        with pytest.raises(ValueError):
            CrashSpec(hazard=1.5)
        with pytest.raises(ValueError):
            CrashSpec(at={2: 0})  # rounds are 1-based

    def test_message_faults_validation(self):
        with pytest.raises(ValueError):
            MessageFaults(drop=-0.1)
        with pytest.raises(ValueError):
            MessageFaults(delay=0.5, max_delay=0)

    def test_scheduled_crash_strikes_at_first_active_round_past_at(self):
        spec = CrashSpec(at={4: 3})
        assert not spec.strikes(0, 2, 4)
        assert spec.strikes(0, 3, 4)
        assert spec.strikes(0, 7, 4)  # still striking if it stayed active
        assert not spec.strikes(0, 3, 5)  # other vertices unaffected

    def test_hazard_is_deterministic_in_seed_round_vertex(self):
        spec = CrashSpec(hazard=0.5)
        draws = [spec.strikes(42, r, v) for r in range(1, 20) for v in range(20)]
        again = [spec.strikes(42, r, v) for r in range(1, 20) for v in range(20)]
        assert draws == again
        assert any(draws) and not all(draws)
        other = [spec.strikes(43, r, v) for r in range(1, 20) for v in range(20)]
        assert draws != other  # the seed matters


class TestSerialisation:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=11,
            crashes=CrashSpec(at={7: 2, 3: 9}, hazard=0.01),
            messages=MessageFaults(drop=0.1, duplicate=0.2, delay=0.3, max_delay=5),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_through_json_string_keys(self):
        import json

        plan = FaultPlan(seed=1, crashes=CrashSpec(at={12: 4}))
        rec = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(rec) == plan

    def test_partial_dicts_fill_defaults(self):
        plan = FaultPlan.from_dict({"crashes": {"hazard": 0.2}})
        assert plan.seed == 0
        assert plan.crashes.hazard == 0.2
        assert plan.messages is None

    def test_describe_names_components(self):
        text = FaultPlan(
            seed=3,
            crashes=CrashSpec(at={1: 2}),
            messages=MessageFaults(drop=0.1),
        ).describe()
        assert "seed=3" in text and "crash@{1:r2}" in text and "drop=0.1" in text
        assert "no faults" in FaultPlan().describe()


class TestInjector:
    def test_fate_is_order_independent(self):
        """The same (round, src, dst, k) draws the same fate no matter the
        interleaving -- the property both engines' equivalence rests on."""
        plan = FaultPlan(
            seed=5, messages=MessageFaults(drop=0.3, duplicate=0.3, delay=0.3)
        )
        pairs = [(s, d) for s in range(6) for d in range(6) if s != d]

        def collect(order):
            inj = plan.injector()
            inj.begin_run(None)
            inj.on_round(1, [])
            return {p: inj.fate(1, *p) for p in order}

        forward = collect(pairs)
        backward = collect(list(reversed(pairs)))
        assert forward == backward

    def test_duplicate_sends_draw_independent_fates(self):
        plan = FaultPlan(seed=2, messages=MessageFaults(drop=0.5))
        inj = plan.injector()
        inj.begin_run(None)
        inj.on_round(1, [])
        fates = [inj.fate(1, 0, 1) for _ in range(40)]
        assert () in fates and (0,) in fates  # the copy counter decorrelates

    def test_hold_and_due_delivery_round(self):
        plan = FaultPlan(seed=0, messages=MessageFaults(delay=1.0))
        inj = plan.injector()
        inj.begin_run(None)
        inj.on_round(1, [])
        inj.hold(2, 0, 1, "late")
        assert inj.take_delayed_count() == 1
        assert inj.on_round(2, []) == ([], [])
        assert inj.on_round(3, []) == ([], [])
        _, due = inj.on_round(4, [])
        assert due == [(0, 1, "late")]

    def test_due_filters_crashed_receivers(self):
        plan = FaultPlan(seed=0, crashes=CrashSpec(at={1: 2}))
        inj = plan.injector()
        inj.begin_run(None)
        inj.on_round(1, [0, 1, 2])
        inj.hold(1, 0, 1, "x")  # due in round 3 (one extra round late)
        inj.hold(1, 0, 2, "y")
        crashes, _ = inj.on_round(2, [0, 1, 2])
        assert crashes == [1]
        _, due = inj.on_round(3, [0, 2])
        assert due == [(0, 2, "y")]  # the copy to crashed 1 is gone

    def test_crash_state_is_session_persistent_but_delay_buffer_is_not(self):
        plan = FaultPlan(seed=0, crashes=CrashSpec(at={3: 1}))
        inj = plan.injector()
        assert inj.begin_run(None) == frozenset()
        inj.on_round(1, [0, 3])
        inj.hold(1, 0, 3, "lost-with-the-network")
        # second engine run in the same session
        assert inj.begin_run(None) == frozenset({3})
        assert inj.on_round(2, [0]) == ([], [])  # held copy discarded

    def test_emit_narrates_crashes(self):
        events = []
        plan = FaultPlan(seed=0, crashes=CrashSpec(at={2: 1}))
        inj = plan.injector()
        inj.begin_run(events.append)
        crashes, _ = inj.on_round(1, [0, 1, 2])
        assert crashes == [2]
        assert [e.kind for e in events] == ["fault_crash"]
        assert events[0].v == 2


class TestSession:
    def test_session_installs_and_restores(self):
        assert current() is None
        plan = FaultPlan(seed=1, crashes=CrashSpec(hazard=0.1))
        with session(plan) as inj:
            assert current() is inj
            assert isinstance(inj, FaultInjector)
        assert current() is None

    def test_session_accepts_prebuilt_injector(self):
        inj = FaultPlan(seed=1, crashes=CrashSpec(at={0: 1})).injector()
        with session(inj) as got:
            assert got is inj

    def test_sessions_nest_and_unwind(self):
        a = FaultPlan(seed=1, crashes=CrashSpec(hazard=0.1))
        b = FaultPlan(seed=2, crashes=CrashSpec(hazard=0.1))
        with session(a) as ia:
            with session(b) as ib:
                assert current() is ib
            assert current() is ia
        assert current() is None

    def test_install_returns_previous(self):
        inj = FaultPlan(seed=1, crashes=CrashSpec(hazard=0.1)).injector()
        assert install(inj) is None
        try:
            assert current() is inj
        finally:
            assert install(None) is inj
        assert current() is None

"""Crash-stop semantics at the engine level.

A crashed vertex is removed at the *start* of its crash round: it
performs no computation that round, produces no output, announces
nothing (neighbors never see it halt), and its recorded running time is
the last round it completed.  The paper's Equation (1) accounting
(``check_active_trace``) must survive all of this.
"""

import pytest

import repro
from repro.faults import CrashSpec, FaultPlan, MessageFaults, session
from repro.graphs import generators as gen
from repro.obs import EventBus, MemorySink
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork

ENGINES = (SyncNetwork, ReferenceSyncNetwork)


def prog_count_three(ctx):
    for r in range(3):
        ctx.broadcast(("r", r))
        yield
    return ("done", ctx.v)


@pytest.mark.parametrize("engine", ENGINES)
def test_crashed_vertex_has_no_output_and_truncated_rounds(engine):
    g = gen.ring(8)
    plan = FaultPlan(seed=0, crashes=CrashSpec(at={3: 2}))
    res = engine(g).run(prog_count_three, faults=plan)
    assert res.crashed == (3,)
    assert 3 not in res.outputs
    assert set(res.outputs) == set(range(8)) - {3}
    # crashed in round 2 => it completed only round 1
    assert res.metrics.rounds[3] == 1
    # survivors: 3 yields + the terminating resume = 4 rounds
    assert all(res.metrics.rounds[v] == 4 for v in res.outputs)


@pytest.mark.parametrize("engine", ENGINES)
def test_crash_is_not_a_halt_announcement(engine):
    """Neighbors of a crashed vertex never see it in ctx.halted."""
    seen = {}

    def prog(ctx):
        for r in range(4):
            ctx.broadcast("x")
            yield
        seen[ctx.v] = dict(ctx.halted)
        return ctx.v

    g = gen.ring(6)
    plan = FaultPlan(seed=0, crashes=CrashSpec(at={2: 2}))
    res = engine(g).run(prog, faults=plan)
    assert res.crashed == (2,)
    for v, halted in seen.items():
        assert 2 not in halted


@pytest.mark.parametrize("engine", ENGINES)
def test_active_trace_accounting_survives_crashes(engine):
    g = gen.union_of_forests(40, 2, seed=3)
    plan = FaultPlan(seed=4, crashes=CrashSpec(hazard=0.05))
    res = engine(g).run(prog_count_three, faults=plan)
    assert res.crashed  # hazard 5% over 3 rounds x 40 vertices: ~certain
    assert res.metrics.check_active_trace()  # Equation (1) still holds


@pytest.mark.parametrize("engine", ENGINES)
def test_pre_crashed_vertices_removed_before_round_one(engine):
    """Session persistence: a vertex crashed in a previous run of the
    same session never executes in the next run."""
    g = gen.ring(6)
    plan = FaultPlan(seed=0, crashes=CrashSpec(at={1: 2}))
    with session(plan) as inj:
        first = engine(g).run(prog_count_three, faults=inj)
        assert first.crashed == (1,)
        second = engine(g).run(prog_count_three, faults=inj)
    assert second.crashed == (1,)
    assert 1 not in second.outputs
    assert second.metrics.rounds[1] == 0  # never ran at all
    # the active trace starts below n
    assert second.metrics.active_trace[0] == 5


@pytest.mark.parametrize("engine", ENGINES)
def test_crash_events_emitted_once_per_vertex(engine):
    g = gen.ring(8)
    plan = FaultPlan(seed=0, crashes=CrashSpec(at={2: 1, 5: 3}))
    sink = MemorySink()
    res = engine(g).run(prog_count_three, bus=EventBus(sink), faults=plan)
    crashes = [(e.round, e.v) for e in sink.by_kind("fault_crash")]
    assert crashes == [(1, 2), (3, 5)]
    assert res.crashed == (2, 5)


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_plan_is_the_null_adversary(engine):
    g = gen.ring(8)
    clean = engine(g).run(prog_count_three)
    faulted = engine(g).run(prog_count_three, faults=FaultPlan(seed=99))
    assert faulted.outputs == clean.outputs
    assert faulted.metrics.rounds == clean.metrics.rounds
    assert faulted.crashed == ()


def test_multi_phase_driver_sees_persistent_crashes():
    """A crash during run_partition's phases persists: the final result
    is missing exactly the crashed vertices' outputs."""
    g = gen.union_of_forests(60, 2, seed=1)
    plan = FaultPlan(seed=123, crashes=CrashSpec(at={10: 1}))
    with session(plan) as inj:
        res = repro.run_partition(g, a=2)
        assert 10 in inj.crashed
    assert 10 not in res.h_index
    assert set(res.h_index) == set(range(60)) - {10}


def test_message_faults_require_no_crash_component():
    g = gen.ring(10)
    plan = FaultPlan(seed=7, messages=MessageFaults(drop=0.2))
    res = SyncNetwork(g).run(prog_count_three, faults=plan)
    assert res.crashed == ()
    assert set(res.outputs) == set(range(10))

"""The self-checking harness: classification, shrinking, artifacts."""

import json

import pytest

from repro.faults import (
    OUTCOME_ERROR,
    OUTCOME_NONTERMINATION,
    OUTCOME_VALID,
    OUTCOME_VIOLATION,
    CrashSpec,
    FaultPlan,
    FuzzCase,
    MessageFaults,
    load_artifact,
    replay_artifact,
    run_case,
    shrink_case,
    write_artifact,
)
from repro import zoo
from repro.verify import VerificationError


def _case(algorithm="partition", workload="forest_union_a3", n=40, seed=3, plan=None):
    return FuzzCase(
        algorithm=algorithm,
        workload=workload,
        n=n,
        seed=seed,
        plan=plan if plan is not None else FaultPlan(),
    )


class TestClassification:
    def test_clean_case_is_valid(self):
        out = run_case(_case())
        assert out.status == OUTCOME_VALID
        assert out.crashed == ()
        assert out.worst_rounds > 0
        assert not out.failed

    def test_crash_tolerant_run_is_valid_with_crashes(self):
        plan = FaultPlan(seed=9, crashes=CrashSpec(hazard=0.02))
        out = run_case(_case(plan=plan))
        assert out.status == OUTCOME_VALID
        assert out.crashed  # the adversary did act

    def test_nontermination_is_caught_and_classified(self):
        # a crashed MIS participant leaves neighbors waiting forever
        plan = FaultPlan(seed=2, crashes=CrashSpec(at={3: 2, 7: 1}))
        out = run_case(_case(algorithm="mis", workload="gnp_sparse", seed=5, plan=plan))
        assert out.status == OUTCOME_NONTERMINATION
        assert "still active" in out.detail
        assert not out.failed  # the watchdog did its job; not a fuzz failure

    def test_broken_verifier_is_a_violation(self):
        def broken(g, res, alive):
            raise VerificationError("deliberately broken")

        out = run_case(_case(), checks={"partition": broken})
        assert out.status == OUTCOME_VIOLATION
        assert out.detail == "deliberately broken"
        assert out.failed

    def test_driver_exception_is_an_error(self):
        case = _case(algorithm="nope")
        with pytest.raises(KeyError):
            run_case(case)
        # an exception *inside* the driver classifies as error
        bad_plan = FaultPlan(seed=1, crashes=CrashSpec(at={0: 1}))

        def chokes(g, ids=None, a=None):
            raise RuntimeError("driver cannot digest the crash")

        zoo.register(
            zoo.AlgorithmSpec(
                name="_chokes",
                problem="coloring",
                driver=zoo.DriverRef.make(fn=chokes),
            )
        )
        try:
            out = run_case(_case(algorithm="_chokes", plan=bad_plan))
        finally:
            zoo.unregister("_chokes")
        assert out.status == OUTCOME_ERROR
        assert "driver cannot digest" in out.detail
        assert out.failed

    @pytest.mark.parametrize(
        "algorithm",
        ["a2", "mis", "matching", "edge-coloring", "delta-plus-one"],
    )
    def test_zoo_algorithms_clean_runs_are_valid(self, algorithm):
        out = run_case(_case(algorithm=algorithm, n=30))
        assert out.status == OUTCOME_VALID

    @pytest.mark.parametrize(
        "algorithm", ["ka2", "one-plus-eta", "aloglogn"]
    )
    def test_previously_unfuzzed_algorithms_are_covered(self, algorithm):
        """Regression: these three were in the CLI but absent from the old
        hand-maintained ``_ZOO`` dict, so they were never fuzzed."""
        assert algorithm in {s.name for s in zoo.crash_safe()}
        plan = FaultPlan(seed=11, crashes=CrashSpec(hazard=0.01))
        out = run_case(_case(algorithm=algorithm, n=24, plan=plan))
        # crash-only plans must never yield a safety violation
        assert out.status != OUTCOME_VIOLATION


class TestSurvivorChecks:
    def test_coloring_check_restricted_to_survivors(self):
        import repro
        from repro.bench.workloads import make_workload
        from repro.graphs import generators as gen
        from repro.zoo.checks import check_vertex_coloring

        g, a = make_workload("forest_union_a3")(40, seed=0)
        res = repro.run_a2_coloring(g, a=a, ids=gen.random_ids(g.n, seed=1))
        check_vertex_coloring(g, res, set(g.vertices()))
        # corrupt one vertex's color: full check fails, survivor check
        # with that vertex dead passes
        u, v = next(iter(g.edges()))
        res.colors[u] = res.colors[v]
        with pytest.raises(VerificationError):
            check_vertex_coloring(g, res, set(g.vertices()))
        check_vertex_coloring(g, res, set(g.vertices()) - {u})

    def test_missing_survivor_output_is_a_violation(self):
        import repro
        from repro.bench.workloads import make_workload
        from repro.graphs import generators as gen
        from repro.zoo.checks import check_mis

        g, a = make_workload("forest_union_a2")(30, seed=0)
        res = repro.run_mis(g, a=a, ids=gen.random_ids(g.n, seed=1))
        del res.in_mis[5]
        with pytest.raises(VerificationError, match="without an MIS decision"):
            check_mis(g, res, set(g.vertices()))
        check_mis(g, res, set(g.vertices()) - {5})  # dead vertices exempt


class TestShrinking:
    def test_shrinks_n_to_the_floor_of_reproduction(self):
        case = _case(n=140)
        small, spent = shrink_case(case, lambda c: c.n >= 24, budget=50)
        assert small.n == 24
        assert spent > 0

    def test_drops_fault_components_that_do_not_matter(self):
        plan = FaultPlan(
            seed=1,
            crashes=CrashSpec(at={2: 1, 5: 3}, hazard=0.1),
            messages=MessageFaults(drop=0.1, duplicate=0.1),
        )
        case = _case(n=24, plan=plan)
        # failure reproduces regardless of the plan: everything shrinks away
        small, _ = shrink_case(case, lambda c: True, budget=80)
        assert small.n == 8
        assert small.plan.empty

    def test_keeps_the_component_the_failure_needs(self):
        plan = FaultPlan(
            seed=1,
            crashes=CrashSpec(at={2: 1}),
            messages=MessageFaults(drop=0.5),
        )
        case = _case(n=24, plan=plan)

        def needs_drop(c):
            return c.plan.messages is not None and c.plan.messages.drop > 0

        small, _ = shrink_case(case, needs_drop, budget=80)
        assert small.plan.messages.drop == 0.5
        assert small.plan.crashes is None  # the crash component shrank away

    def test_budget_bounds_the_attempts(self):
        case = _case(n=140)
        calls = []

        def pred(c):
            calls.append(c)
            return True

        shrink_case(case, pred, budget=7)
        assert len(calls) <= 7


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(seed=3, crashes=CrashSpec(at={1: 2}))
        case = _case(plan=plan)
        outcome = run_case(case)
        path = str(tmp_path / "artifact.json")
        write_artifact(path, outcome, shrunk_from=_case(n=140, plan=plan))
        loaded_case, rec = load_artifact(path)
        assert loaded_case == case
        assert rec["status"] == outcome.status
        assert rec["shrunk_from"]["n"] == 140

    def test_replay_reproduces_the_outcome(self, tmp_path):
        plan = FaultPlan(seed=2, crashes=CrashSpec(at={3: 2, 7: 1}))
        case = _case(algorithm="mis", workload="gnp_sparse", seed=5, plan=plan)
        outcome = run_case(case)
        path = str(tmp_path / "nonterm.json")
        write_artifact(path, outcome)
        again = replay_artifact(path)
        assert again.status == outcome.status == OUTCOME_NONTERMINATION
        assert again.crashed == outcome.crashed

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "case": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_artifact(str(path))

    def test_case_dict_round_trip(self):
        case = _case(
            plan=FaultPlan(
                seed=7,
                crashes=CrashSpec(at={4: 2}, hazard=0.01),
                messages=MessageFaults(delay=0.1),
            )
        )
        assert FuzzCase.from_dict(json.loads(json.dumps(case.to_dict()))) == case

"""Shared fixtures: a suite of small graphs spanning the families the
paper's claims quantify over, with known arboricity."""

from __future__ import annotations

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph


def small_graph_suite() -> list[tuple[str, Graph, int]]:
    """(name, graph, arboricity-upper-bound-to-run-with) triples used by
    correctness tests across all algorithms."""
    return [
        ("empty", Graph(0), 1),
        ("single", Graph(1), 1),
        ("two-isolated", Graph(2), 1),
        ("one-edge", Graph(2, [(0, 1)]), 1),
        ("triangle", gen.complete(3), 2),
        ("path", gen.path(17), 1),
        ("ring", gen.ring(16), 2),
        ("star", gen.star(12), 1),
        ("binary-tree", gen.binary_tree(31), 1),
        ("grid", gen.grid(5, 6), 2),
        ("tri-grid", gen.triangular_grid(4, 5), 3),
        ("k5", gen.complete(5), 3),
        ("k33", gen.complete_bipartite(3, 3), 2),
        ("hypercube", gen.hypercube(4), 3),
        ("caterpillar", gen.caterpillar(8, 3), 1),
        ("star-forest", gen.star_forest(4, 5), 1),
        ("forest-union", gen.union_of_forests(60, 3, seed=0), 3),
        ("gnp", gen.gnp(50, 0.1, seed=1), 5),
        ("tree", gen.random_tree(40, seed=2), 1),
    ]


@pytest.fixture(params=small_graph_suite(), ids=lambda t: t[0])
def named_graph(request):
    return request.param


@pytest.fixture
def forest_union_200():
    return gen.union_of_forests(200, 3, seed=7)

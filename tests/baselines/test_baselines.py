"""Tests for the worst-case baselines (comparison columns of Tables 1-2)."""

import pytest

from repro.baselines import (
    run_arb_color_worstcase,
    run_arb_linial_worstcase,
    run_delta_plus_one_worstcase,
    run_linial_coloring,
    run_luby_mis,
    run_ring_three_coloring,
)
from repro.baselines.cole_vishkin import _cv_reduce, _cv_steps
from repro.core.common import partition_length_bound
from repro.graphs import generators as gen
from repro.verify import assert_maximal_independent_set, assert_proper_coloring


class TestLinial:
    def test_proper(self):
        g = gen.union_of_forests(1000, 2, seed=1)
        res = run_linial_coloring(g)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    def test_fixpoint_palette_quadratic_in_delta(self):
        g = gen.ring(1000)  # Delta = 2
        res = run_linial_coloring(g)
        assert res.palette_bound <= 49  # (2*2+1 -> prime 5)^2 = 25-49 range

    def test_average_equals_worst_shape(self):
        """The pre-paper situation: everyone runs the full log* schedule."""
        g = gen.ring(2000)
        m = run_linial_coloring(g).metrics
        assert m.worst_case - m.vertex_averaged < 1.0

    def test_custom_degree_bound(self):
        g = gen.ring(500)
        res = run_linial_coloring(g, degree_bound=4)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)


class TestDeltaPlusOneWorstcase:
    def test_proper_with_budget(self):
        g = gen.union_of_forests(500, 3, seed=2)
        res = run_delta_plus_one_worstcase(g, ids=gen.random_ids(500, seed=1))
        assert_proper_coloring(g, res.colors, max_colors=g.max_degree() + 1)

    def test_on_grid(self):
        g = gen.grid(12, 12)
        res = run_delta_plus_one_worstcase(g)
        assert_proper_coloring(g, res.colors, max_colors=5)


class TestLuby:
    def test_valid_mis(self):
        g = gen.union_of_forests(600, 3, seed=3)
        res = run_luby_mis(g, seed=4)
        assert_maximal_independent_set(g, res.mis)

    def test_isolated_vertices(self):
        from repro.graphs.graph import Graph

        g = Graph(5, [(0, 1)])
        res = run_luby_mis(g, seed=1)
        assert {2, 3, 4} <= res.mis

    def test_seeds_vary_solution(self):
        g = gen.gnp(120, 0.05, seed=5)
        assert run_luby_mis(g, seed=1).mis != run_luby_mis(g, seed=2).mis

    def test_worst_case_grows_with_n(self):
        worsts = []
        for n in (200, 6400):
            g = gen.union_of_forests(n, 3, seed=6)
            worsts.append(run_luby_mis(g, seed=7).metrics.worst_case)
        assert worsts[1] > worsts[0]


class TestColeVishkin:
    def test_three_colors_ring(self):
        for n in (3, 10, 101, 1024):
            g = gen.ring(n)
            res = run_ring_three_coloring(g, ids=gen.random_ids(n, seed=n))
            assert_proper_coloring(g, res.colors, max_colors=3)

    def test_log_star_shape_and_avg_equals_worst(self):
        """The [12] negative result's exhibit: on rings, average == worst
        (every vertex runs the same log* n + O(1) schedule)."""
        g = gen.ring(5000)
        m = run_ring_three_coloring(g).metrics
        assert m.vertex_averaged == m.worst_case
        assert m.worst_case <= _cv_steps(5000) + 3 + 1

    def test_cv_reduce_breaks_ties(self):
        # distinct inputs stay distinct through a step
        for a in range(8):
            for b in range(8):
                if a != b:
                    # reduce(a, b) encodes a bit position where a and b
                    # differ, plus a's bit there -- so adjacent vertices
                    # (which have distinct colors) stay distinct.
                    r = _cv_reduce(a, b)
                    i, bit = r // 2, r % 2
                    assert (a >> i) & 1 == bit
                    assert (b >> i) & 1 != bit

    def test_bad_successor_rejected(self):
        g = gen.ring(5)
        with pytest.raises(ValueError, match="not a neighbor"):
            run_ring_three_coloring(g, successor=[2, 3, 4, 0, 1])


class TestArbWorstcase:
    def test_arb_linial_worstcase_valid(self):
        g = gen.union_of_forests(400, 3, seed=8)
        res = run_arb_linial_worstcase(g, a=3)
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    def test_arb_linial_worstcase_pays_log_n_for_everyone(self):
        g = gen.union_of_forests(400, 3, seed=8)
        res = run_arb_linial_worstcase(g, a=3)
        ell = partition_length_bound(g.n, 1.0)
        assert res.metrics.vertex_averaged >= ell
        assert res.metrics.worst_case - res.metrics.vertex_averaged < 3

    def test_arb_color_worstcase_valid_and_frugal(self):
        g = gen.union_of_forests(400, 3, seed=9)
        res = run_arb_color_worstcase(g, a=3, ids=gen.random_ids(400, seed=2))
        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)
        assert res.palette_bound == int(3 * 3) + 1

    def test_worstcase_average_grows_with_n(self):
        avgs = []
        for n in (200, 3200):
            g = gen.union_of_forests(n, 3, seed=10)
            avgs.append(run_arb_linial_worstcase(g, a=3).metrics.vertex_averaged)
        assert avgs[1] > avgs[0] + 2  # Theta(log n) growth
